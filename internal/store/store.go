// Package store persists sketches and serves data-discovery queries
// over them. It is the system layer the paper's workflow implies:
// sketches are built once per (table, key column, value column) triple at
// ingestion time, stored next to the dataset catalog, and ranking queries
// ("which candidate features carry information about my target?") run
// against the stored sketches alone — no source data access, no joins.
//
// Storage is pluggable (OpenOptions.Backend). The default "fs" backend
// packs sketches into append-only segment files (segment.go, fsbackend.go):
// Puts and Delete tombstones append fsynced records, sealed segments are
// mmap'd and ranking decodes candidate sketches in place out of the
// mapping — a cold discovery query performs no per-candidate syscalls
// and no array copies — and a background (or on-demand) compaction folds
// overwritten records and tombstones into fresh segments. The "mem"
// backend keeps everything in process memory for diskless servers and
// tests. Both sit under the same manifest-indexed catalog, byte-bounded
// decoded-sketch LRU, and worker-pool ranking machinery.
package store

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"misketch/internal/core"
	"misketch/internal/mi"
)

// ErrNotFound is the sentinel wrapped by Get and Delete when no sketch
// with the requested name exists. Callers translating store errors into
// protocol status codes (the HTTP service's 404-vs-500 split) must test
// with errors.Is against this sentinel: every other error from Get — a
// CRC mismatch, a truncated record, an I/O failure — is store-side
// corruption, not a missing name, and conflating the two turns data
// loss into a silent "not found".
var ErrNotFound = errors.New("sketch not found")

// Store is a catalog of persisted sketches with a manifest index, a
// bounded in-memory cache, and a pluggable storage backend. It is safe
// for concurrent use by one process; concurrent writers from separate
// processes are not supported (readers are).
type Store struct {
	dir     string
	backend backend

	mu       sync.Mutex
	manifest map[string]Meta
	cache    *lruCache // nil when caching is disabled
	dirty    bool      // manifest has unpersisted mutations
	// covered tracks, per segment, the end offset of the last record
	// whose index entry this manifest map reflects. A Flush snapshots it
	// together with the manifest, so a mutation that is durable in its
	// segment but not yet indexed (mid-Put, mid-Delete) stays below the
	// persisted covered horizon and is replayed — not lost — if the
	// process dies before the next flush.
	covered map[uint64]int64
	// gen counts Put/Delete mutations; Get uses it to detect a mutation
	// racing its unlocked load (two sketch versions can share identical
	// metadata, so manifest comparison is not enough). A single
	// store-wide counter keeps memory bounded; the cost is only that a
	// read concurrent with any write skips populating the cache.
	//
	// It is an atomic so Gen() — the fence every result-caching layer
	// above the store reads on its hot path — never touches the store
	// mutex: a warm cached rank must not contend with an in-flight Put,
	// Delete, or compaction. Mutation sites still increment while
	// holding mu, so a generation observed under the lock is exact and
	// a lock-free read is never newer than the manifest state that
	// produced it.
	gen atomic.Uint64

	// compactStop ends the auto-compaction loop (nil when disabled).
	compactStop chan struct{}
	compactDone chan struct{}
	compactMu   sync.Mutex // serializes Compact calls

	diskReads   atomic.Int64 // record decodes out of the backend
	puts        atomic.Int64 // successful Put calls
	deletes     atomic.Int64 // successful Delete calls
	rankQueries atomic.Int64 // RankQuery calls (including failed ones)
	rankBatches atomic.Int64 // RankBatch calls (including failed ones)
	prunedPairs atomic.Int64 // (train, candidate) pairs pruned by the key-overlap prefilter
	// candNoDecode counts candidates the per-segment key indexes excluded
	// from ranking without a record decode — the sub-linear selection win.
	candNoDecode atomic.Int64
	compactions  atomic.Int64 // completed compaction passes
	// Cascade tier counters: over cascade-eligible (train, candidate)
	// pairs, how many were resolved by the cheap binned tier alone, how
	// many went on to pay the exact KSG-family estimator, and how many of
	// those were admitted only by the safety margin (or saturation guard)
	// and then actually entered a running top-K heap — the rescues the
	// margin exists for.
	cascadeCheap   atomic.Int64
	cascadeExact   atomic.Int64
	cascadeRescues atomic.Int64

	// rankScratch is the store-owned estimator scratch pool ranking
	// queries draw per-worker scratch from when the caller supplies none,
	// so consecutive queries on one handle reuse grown-to-size buffers.
	rankScratch core.ScratchPool
}

// Defaults for OpenOptions zero values.
const (
	DefaultCacheBytes = 64 << 20

	// DefaultCompactMinGarbage is the dead-byte fraction above which the
	// auto-compaction loop compacts.
	DefaultCompactMinGarbage = 0.3
)

// OpenOptions tunes a store handle.
type OpenOptions struct {
	// CacheBytes bounds the decoded-sketch LRU cache. Zero means
	// DefaultCacheBytes; a negative value disables caching entirely.
	CacheBytes int64
	// Backend selects the storage engine: BackendFS (default) packs
	// sketches into mmap-backed segment files under dir; BackendMem
	// keeps everything in memory and never touches dir.
	Backend string
	// SegmentBytes is the fs backend's segment roll threshold (zero
	// means DefaultSegmentBytes).
	SegmentBytes int64
	// Compression makes compaction write FSST-compressed segments:
	// categorical values packed against a per-segment symbol table, key
	// hashes delta/dictionary-coded (see internal/store/compress.go).
	// The active append segment always stays raw (its records are
	// acked and frozen), so compression lands at the next compaction —
	// Store.Compact, the CompactEvery loop, or the `store compact
	// -compress` backfill. Reading is format-driven per segment, so
	// compressed and raw segments mix freely and a store opened
	// without Compression still reads compressed segments (they are
	// rewritten raw whenever a compaction folds them).
	Compression bool
	// CompactEvery, when positive, starts a background loop that
	// examines the fs store every interval and compacts once the dead
	// fraction of segment bytes exceeds CompactMinGarbage. Close stops
	// the loop.
	CompactEvery time.Duration
	// CompactMinGarbage overrides the dead-byte fraction that triggers
	// auto-compaction (zero means DefaultCompactMinGarbage).
	CompactMinGarbage float64
	// Shards is accepted for compatibility with the file-per-sketch
	// layout and ignored: the segment engine has no directory fan-out,
	// and legacy stores of any fan-out migrate on open.
	Shards int
}

// Open opens (creating if necessary) a sketch store rooted at dir with
// default options.
func Open(dir string) (*Store, error) {
	return OpenWithOptions(dir, OpenOptions{})
}

// OpenWithOptions opens (creating if necessary) a sketch store rooted at
// dir. A checksummed manifest that loads cleanly is trusted as-is, so
// opening an indexed store costs one file read plus one mmap per
// segment, regardless of catalog size; acked mutations from after the
// last manifest write are recovered by replaying the segment tails. When
// the manifest is missing or corrupt the store heals itself from the
// segment records alone, and stores in either legacy file-per-sketch
// layout (flat or sharded) are migrated into segments transparently.
func OpenWithOptions(dir string, opt OpenOptions) (*Store, error) {
	s := &Store{dir: dir}
	if opt.CacheBytes >= 0 {
		max := opt.CacheBytes
		if max == 0 {
			max = DefaultCacheBytes
		}
		s.cache = newLRUCache(max)
	}
	switch opt.Backend {
	case "", BackendFS:
		fb, metas, err := openFSBackend(dir, opt.SegmentBytes, opt.Compression)
		if err != nil {
			return nil, err
		}
		s.backend = fb
		s.manifest = metas
		s.covered = fb.coveredSnapshot()
	case BackendMem:
		s.backend = newMemBackend()
		s.manifest = make(map[string]Meta)
		s.covered = make(map[uint64]int64)
	default:
		return nil, fmt.Errorf("store: unknown backend %q", opt.Backend)
	}
	if opt.CompactEvery > 0 {
		minGarbage := opt.CompactMinGarbage
		if minGarbage <= 0 {
			minGarbage = DefaultCompactMinGarbage
		}
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.autoCompact(s.compactStop, s.compactDone, opt.CompactEvery, minGarbage)
	}
	return s, nil
}

// Flush persists the manifest if it has unsaved mutations. Put and
// Delete update the manifest in memory only (their records are already
// durable in the backend; rewriting the index on every mutation would
// make bulk ingestion quadratic); a store that crashes between Flushes
// recovers the un-indexed mutations by replaying segment tails on the
// next Open.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if !s.dirty {
		return nil
	}
	if err := s.backend.persist(s.manifest, s.covered); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Close stops the auto-compaction loop (if any), flushes the manifest,
// and seals the active segment so the next open maps everything without
// replay. The Store remains usable afterwards; Close exists so callers
// can defer persistence idiomatically.
func (s *Store) Close() error {
	s.mu.Lock()
	stop := s.compactStop
	s.compactStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.compactDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.backend.close()
}

// Put persists a sketch under the given name (conventionally
// "table.csv#column@key"), overwriting any previous version. The write
// is durable before Put returns: the record is appended to the active
// segment and fsynced (a crash afterwards replays it from the segment on
// the next open, manifest or no manifest).
func (s *Store) Put(name string, sk *core.Sketch) error {
	if name == "" {
		return fmt.Errorf("store: empty sketch name")
	}
	for {
		s.mu.Lock()
		b := s.backend
		s.mu.Unlock()
		seg, off, length, err := b.put(name, sk)
		if err != nil {
			return fmt.Errorf("store: writing %q: %w", name, err)
		}
		if err := crashPoint("put.appended"); err != nil {
			return err
		}
		s.mu.Lock()
		if s.backend != b {
			// A concurrent RebuildManifest swapped the backend under us;
			// the appended record landed in an abandoned segment (where
			// a future replay may still find it). Re-append through the
			// new backend so this handle's index is right now.
			s.mu.Unlock()
			continue
		}
		s.manifest[name] = metaOf(name, sk, seg, off, length)
		if end := off + length; s.covered[seg] < end {
			s.covered[seg] = end
		}
		s.gen.Add(1)
		s.dirty = true
		if s.cache != nil {
			s.cache.add(name, sk, 0)
		}
		s.mu.Unlock()
		s.puts.Add(1)
		return nil
	}
}

// Get loads the named sketch (from cache when warm). The returned sketch
// owns its memory (or, on the mem backend, is the stored sketch itself)
// and stays valid indefinitely.
func (s *Store) Get(name string) (*core.Sketch, error) {
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		if s.cache != nil {
			if sk, tag, ok := s.cache.get(name); ok {
				if tag != 0 {
					// A ranking query cached a borrowed view; hand the
					// caller an owning copy instead of a sketch whose
					// memory a compaction could retire. The clone happens
					// under the lock — a concurrent compaction purges and
					// unmaps retired segments under the same lock, so the
					// view's bytes cannot vanish mid-copy — and replaces
					// the borrowed entry so later Gets are plain hits.
					sk = core.CloneSketch(sk)
					s.cache.add(name, sk, 0)
				}
				s.mu.Unlock()
				return sk, nil
			}
		}
		m, known := s.manifest[name]
		gen := s.gen.Load()
		b := s.backend
		s.mu.Unlock()
		if !known {
			return nil, fmt.Errorf("store: no sketch %q: %w", name, ErrNotFound)
		}
		sk, err := b.loadOwned(m)
		if err == errSegmentGone && attempt < 3 {
			continue // compaction moved the record; re-read its location
		}
		if err != nil {
			return nil, err
		}
		s.diskReads.Add(1)
		s.mu.Lock()
		// Only cache the load if no Put or Delete raced it: a stale (or
		// deleted) version must not be resurrected into the cache over
		// the mutation's result.
		if _, ok := s.manifest[name]; ok && s.gen.Load() == gen && s.backend == b && s.cache != nil {
			s.cache.add(name, sk, 0)
		}
		s.mu.Unlock()
		return sk, nil
	}
}

// Delete removes the named sketch: a tombstone record is appended
// durably and the entry leaves the manifest and cache; compaction later
// reclaims the dead bytes.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	_, known := s.manifest[name]
	b := s.backend
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("store: no sketch %q: %w", name, ErrNotFound)
	}
	seg, end, err := b.tombstone(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.manifest[name]; ok {
		delete(s.manifest, name)
		s.dirty = true
	}
	if s.backend == b && s.covered[seg] < end {
		s.covered[seg] = end
	}
	s.gen.Add(1)
	if s.cache != nil {
		s.cache.remove(name)
	}
	s.mu.Unlock()
	s.deletes.Add(1)
	return nil
}

// List returns the names of all stored sketches, sorted. It reads only
// the manifest — no storage access.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.manifest))
	for name := range s.manifest {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names, nil
}

// Meta returns the manifest record for the named sketch.
func (s *Store) Meta(name string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifest[name]
	return m, ok
}

// Metas returns every manifest record, sorted by name.
func (s *Store) Metas() []Meta {
	s.mu.Lock()
	metas := make([]Meta, 0, len(s.manifest))
	for _, m := range s.manifest {
		metas = append(metas, m)
	}
	s.mu.Unlock()
	sort.Slice(metas, func(i, j int) bool { return metas[i].Name < metas[j].Name })
	return metas
}

// RebuildManifest re-derives the manifest from the storage backend — the
// repair path for stores whose manifest was lost, corrupted, or bypassed
// outside the store's control. On the fs backend it first verifies the
// current index against the segment files (manifest checksum, segment
// footers, per-segment CRCs); a store that checks out clean is left
// untouched without replaying a single record, so repeated rebuilds of a
// healthy store cost reads of the segment pages, never per-sketch work.
// Otherwise the segments are re-opened and replayed from scratch. On the
// mem backend there is nothing to rebuild.
func (s *Store) RebuildManifest() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fb, ok := s.backend.(*fsBackend)
	if !ok {
		return nil
	}
	if s.verifyCleanLocked(fb) {
		return nil
	}
	// Full repair: re-open the directory from scratch and swap the
	// backend. The old backend's segments are released without
	// unlinking (the new backend owns the same files); in-flight
	// queries keep their pins on the old mappings until they finish.
	newFB, metas, err := openFSBackend(s.dir, fb.rollBytes, fb.compress)
	if err != nil {
		return err
	}
	old := fb
	s.backend = newFB
	s.manifest = metas
	s.covered = newFB.coveredSnapshot()
	if s.cache != nil {
		s.cache = newLRUCache(s.cache.max)
	}
	s.dirty = true
	old.abandon()
	return s.flushLocked()
}

// verifyCleanLocked reports whether the in-memory index, the on-disk
// manifest, and the segment files all agree — the rebuild short-circuit.
func (s *Store) verifyCleanLocked(fb *fsBackend) bool {
	if s.dirty {
		return false
	}
	return fb.verifyClean(s.manifest)
}

// Stats are observability counters for a store handle.
//
// Activity counters are process-lifetime only: they count work through
// this handle since it was opened, are never persisted, and reset to
// zero on the next Open (fields describing current state — Sketches,
// CacheBytes, Segments, SegmentBytes, LiveBytes — are re-derived
// instead). This is deliberate: the manifest records what the store
// *contains*, not what any particular process *did* to it, so two
// handles on the same directory never fight over counter state and a
// crashed process cannot leave half-written telemetry behind. Callers
// wanting durable metrics should export Stats snapshots to their own
// monitoring system. TestStatsAreProcessLifetime pins this contract.
type Stats struct {
	// Backend is the storage engine ("fs" or "mem").
	Backend string
	// Sketches is the number of indexed sketches.
	Sketches int
	// Segments is the number of live segment files and SegmentBytes
	// their total size; LiveBytes is the portion still referenced by
	// the manifest — the rest is garbage awaiting compaction. All zero
	// on the mem backend.
	Segments     int
	SegmentBytes int64
	LiveBytes    int64
	// Compactions counts completed compaction passes by this handle.
	Compactions int64
	// CacheBytes is the current size of the decoded-sketch cache.
	CacheBytes int64
	// CacheHits/CacheMisses/Evictions count cache outcomes.
	CacheHits, CacheMisses, Evictions int64
	// DiskReads counts sketch record decodes out of the backend — the
	// operation manifest filtering and the cache exist to avoid.
	DiskReads int64
	// Puts/Deletes count successful mutations through this handle.
	Puts, Deletes int64
	// RankQueries counts discovery queries served by this handle.
	RankQueries int64
	// RankBatches counts batch discovery queries (RankBatch calls).
	RankBatches int64
	// PrunedPairs counts the (train, candidate) pairs discovery queries
	// skipped via the key-overlap prefilter — estimator invocations the
	// coordinated-sample intersection proved unnecessary (whether the
	// overlap came from a segment's key index or a loaded candidate).
	PrunedPairs int64
	// IndexedSegments counts live segments carrying an inverted key
	// index and PostingBytes their total index section size on disk.
	IndexedSegments int
	PostingBytes    int64
	// CompressedSegments counts live FSST-compressed segments;
	// CompressedBytes is what their records occupy on disk and
	// RawBytes what the same records would occupy raw — the achieved
	// ratio is RawBytes/CompressedBytes.
	CompressedSegments int
	CompressedBytes    int64
	RawBytes           int64
	// CandidatesSkippedNoDecode counts candidates the per-segment key
	// indexes excluded from ranking without decoding a single record —
	// the prune rate that makes selection sub-linear in catalog size.
	CandidatesSkippedNoDecode int64
	// CascadeCheapOnly / CascadeExact split the cascade-eligible
	// (train, candidate) pairs of ranking queries by how they resolved:
	// by the cheap binned tier alone (the exact estimator never ran) or
	// by the exact KSG-family tier. Their sum is the number of
	// cascade-eligible pairs estimated; pairs of two categorical columns
	// (whose exact estimator is already the cheap plug-in) and queries
	// run with NoCascade or without a top-K bound are not counted.
	CascadeCheapOnly int64
	CascadeExact     int64
	// CascadeMarginRescues counts exact-tier runs that the raw cheap
	// score alone would have pruned — the safety margin or the
	// saturation guard admitted them — and that then entered a running
	// top-K heap. A zero rescue count under a representative workload is
	// evidence the margin has slack; a high one means the cheap tier
	// misorders that workload and the margin is load-bearing.
	CascadeMarginRescues int64
}

// Stats returns a snapshot of the handle's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Backend:     s.backend.name(),
		Sketches:    len(s.manifest),
		Compactions: s.compactions.Load(),
		DiskReads:   s.diskReads.Load(),
		Puts:        s.puts.Load(),
		Deletes:     s.deletes.Load(),
		RankQueries: s.rankQueries.Load(),
		RankBatches: s.rankBatches.Load(),
		PrunedPairs: s.prunedPairs.Load(),

		CandidatesSkippedNoDecode: s.candNoDecode.Load(),
		CascadeCheapOnly:          s.cascadeCheap.Load(),
		CascadeExact:              s.cascadeExact.Load(),
		CascadeMarginRescues:      s.cascadeRescues.Load(),
	}
	if s.cache != nil {
		st.CacheBytes = s.cache.used
		st.CacheHits = s.cache.hits
		st.CacheMisses = s.cache.misses
		st.Evictions = s.cache.evictions
	}
	if fb, ok := s.backend.(*fsBackend); ok {
		for _, info := range fb.segmentInfos() {
			st.Segments++
			st.SegmentBytes += info.Bytes
			if info.Indexed {
				st.IndexedSegments++
				st.PostingBytes += info.IndexBytes
			}
			if info.Compressed {
				st.CompressedSegments++
				st.CompressedBytes += info.CompressedBytes
				st.RawBytes += info.RawBytes
			}
		}
		for _, m := range s.manifest {
			st.LiveBytes += m.Bytes
		}
	}
	return st
}

// SegmentInfo describes one live segment file of an fs-backed store.
type SegmentInfo struct {
	// Seq is the segment's sequence number (its filename).
	Seq uint64
	// Compacted marks compaction output (vs WAL-order appends).
	Compacted bool
	// Sealed segments are immutable, indexed, and mmap'd; the one
	// unsealed segment (if any) is the active append target.
	Sealed bool
	// Bytes is the segment's current size and Records its record count
	// (live and dead alike).
	Bytes   int64
	Records int
	// LiveRecords and LiveBytes count the records the manifest still
	// references.
	LiveRecords int
	LiveBytes   int64
	// Indexed marks sealed segments carrying an inverted key index and
	// IndexBytes its section size; legacy and frozen segments report
	// false and are served by the full candidate walk.
	Indexed    bool
	IndexBytes int64
	// Compressed marks segments carrying a compression dict section.
	// CompressedBytes is the stored size of their records and RawBytes
	// the raw-equivalent size (both zero when the section fails to
	// parse — its records then fail their decodes rather than guess).
	Compressed      bool
	CompressedBytes int64
	RawBytes        int64
}

// Segments returns per-segment observability state, ordered by sequence
// number. The mem backend has none.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	fb, ok := s.backend.(*fsBackend)
	if !ok {
		return nil
	}
	infos := fb.segmentInfos()
	bySeq := make(map[uint64]*SegmentInfo, len(infos))
	for i := range infos {
		bySeq[infos[i].Seq] = &infos[i]
	}
	for _, m := range s.manifest {
		if info, ok := bySeq[m.Segment]; ok {
			info.LiveRecords++
			info.LiveBytes += m.Bytes
		}
	}
	return infos
}

// RankedSketch is one result of a discovery query.
type RankedSketch struct {
	Name      string
	MI        float64
	Estimator mi.Estimator
	JoinSize  int
}

// Rank is RankContext with a background context and no top-K bound.
func (s *Store) Rank(train *core.Sketch, prefix string, minJoinSize, k int) (ranked []RankedSketch, skipped []string, err error) {
	return s.RankContext(context.Background(), train, prefix, minJoinSize, k, 0)
}

// RankOptions tunes a discovery query; see RankQuery.
type RankOptions struct {
	// Prefix restricts ranking to stored sketches whose name has this
	// prefix; empty ranks everything.
	Prefix string
	// MinJoinSize drops candidates whose sketch join has at most this
	// many samples (the paper's "JoinSize ≤ 100" confidence filter).
	MinJoinSize int
	// K is the neighbor parameter of the KSG-family estimators.
	K int
	// TopK > 0 bounds the result to the K best candidates, accumulated
	// in per-worker bounded heaps; <= 0 returns every candidate.
	TopK int
	// Workers overrides the estimation fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// Probe, when non-nil, is a pre-compiled index over the train sketch
	// (core.CompileTrainProbe on the same sketch); the query probes it
	// instead of compiling its own. Long-running services cache probes by
	// train-sketch content so repeated queries skip compilation.
	Probe *core.TrainProbe
	// ScratchPool, when non-nil, supplies the per-worker estimator
	// scratch: workers draw from it and return their scratch when done,
	// so consecutive queries reuse grown-to-size buffers instead of
	// allocating fresh ones. When nil, queries draw from a pool owned by
	// the store handle — per-query scratch allocation never happens in
	// steady state either way.
	ScratchPool *core.ScratchPool
	// NoIndex disables both the key-overlap prefilter and index-driven
	// candidate selection: every manifest-admitted candidate is loaded
	// and estimated, the historic full-walk reference semantics.
	// Rankings are identical either way (the prefilter only removes
	// candidates the min-join filter would drop after estimation); the
	// flag exists for differential tests and full-walk benchmarking.
	NoIndex bool
	// NoCascade disables the two-tier estimator cascade: every surviving
	// candidate pays the exact estimator, the pre-cascade reference
	// semantics. The cascade (active whenever TopK > 0) scores each pair
	// with the cheap binned tier first and skips the exact KSG-family
	// estimator when the cheap score plus the safety margin cannot reach
	// the K-th exact MI found so far; final rankings are identical as
	// long as the margin covers the cheap tier's underestimation (see
	// CascadeMargin), which the escape hatch and the differential tests
	// exist to check.
	NoCascade bool
	// CascadeMargin is the safety margin in nats added to the cheap
	// tier's score when deciding whether a candidate can still reach the
	// current K-th exact MI. Zero means DefaultCascadeMargin; a negative
	// value means no margin (trust the cheap ordering outright — only
	// sensible in experiments). Larger margins prune less and rescue
	// more; the default is calibrated (internal/exp, RunCascadeCalib)
	// so that exact−cheap residuals across the golden and synthetic
	// corpora stay within it.
	CascadeMargin float64
}

// RankContext is RankQuery with positional options, kept for callers of
// the original signature.
func (s *Store) RankContext(ctx context.Context, train *core.Sketch, prefix string, minJoinSize, k, topK int) (ranked []RankedSketch, skipped []string, err error) {
	return s.RankQuery(ctx, train, RankOptions{Prefix: prefix, MinJoinSize: minJoinSize, K: k, TopK: topK})
}

// RankQuery estimates MI between the train sketch and every stored
// candidate sketch, dropping candidates whose sketch join has at most
// opt.MinJoinSize samples, and returns the rest ordered by decreasing
// MI (bounded to the best opt.TopK when positive).
//
// Candidate selection never decodes excluded sketches: the manifest
// filters on prefix, hash seed, and role, and sealed segments' inverted
// key indexes then exclude candidates whose exact key-hash overlap with
// the train proves their join at or below MinJoinSize — selection work
// grows with matching candidates, not catalog size. Candidates in
// segments without an index (the active segment, legacy segments) are
// loaded and prefiltered per pair instead; either way the pruned pairs
// are identical and counted in Stats.PrunedPairs. Prefix-ineligible
// sketches are silently ignored; prefix-matching sketches with a
// different seed or a train role are reported in the skipped list (they
// cannot be joined).
// A malformed candidate with duplicated key hashes fails the query only
// when a duplicate actually joins the train sketch; duplicates that
// match nothing cannot affect any result and are ranked normally. The
// query is compiled once (core.TrainProbe, reused from opt.Probe when
// set) and estimation fans out across opt.Workers workers, each owning a
// core.Scratch so the per-candidate hot path performs no steady-state
// allocations. On the fs backend, candidates are decoded in place out of
// the pinned segment mappings — no syscalls, no copies. Estimation stops
// early when ctx is cancelled; the result order is deterministic
// regardless of scheduling.
//
// The query runs against a snapshot of the manifest: candidates
// admitted by the snapshot whose sketch is concurrently overwritten
// with an incompatible one (different seed, train role) or deleted
// before the worker reads it are moved to the skipped list rather than
// failing the query or surfacing a half-visible entry — a Put or Delete
// racing an in-flight rank is safe from both sides, as is a concurrent
// compaction.
func (s *Store) RankQuery(ctx context.Context, train *core.Sketch, opt RankOptions) (ranked []RankedSketch, skipped []string, err error) {
	s.rankQueries.Add(1)
	// One train through the shared machinery in rankTrains
	// (rankbatch.go). The prefilter (and the segment key indexes behind
	// it) only ever removes candidates the min-join filter would drop
	// after estimation, so results are bit-identical to the full walk —
	// which remains reachable via NoIndex for differential testing.
	var probes []*core.TrainProbe
	if opt.Probe != nil {
		probes = []*core.TrainProbe{opt.Probe}
	}
	res, err := s.rankTrains(ctx, []*core.Sketch{train}, BatchOptions{
		Prefix:        opt.Prefix,
		MinJoinSize:   opt.MinJoinSize,
		K:             opt.K,
		TopK:          opt.TopK,
		Workers:       opt.Workers,
		Probes:        probes,
		ScratchPool:   opt.ScratchPool,
		NoIndex:       opt.NoIndex,
		NoCascade:     opt.NoCascade,
		CascadeMargin: opt.CascadeMargin,
	}, !opt.NoIndex)
	if err != nil {
		return nil, nil, err
	}
	return res.Queries[0].Ranked, res.Skipped, nil
}

// rankHeap is a bounded min-heap holding the best K results seen so far;
// the weakest result (lowest MI, then lexicographically last name) sits
// at the root so offer can displace it in O(log K).
type rankHeap []RankedSketch

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].MI != h[j].MI {
		return h[i].MI < h[j].MI
	}
	return h[i].Name > h[j].Name
}
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x any)   { *h = append(*h, x.(RankedSketch)) }
func (h *rankHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// offer reports whether the result entered the heap (displacing the
// weakest when full) — the signal the cascade's rescue counter needs.
func (h *rankHeap) offer(r RankedSketch, k int) bool {
	if len(*h) < k {
		heap.Push(h, r)
		return true
	}
	w := (*h)[0]
	if r.MI > w.MI || (r.MI == w.MI && r.Name < w.Name) {
		(*h)[0] = r
		heap.Fix(h, 0)
		return true
	}
	return false
}

// Gen returns the store's mutation generation, which increments on
// every Put and Delete. Callers caching derived state (a content digest
// of a stored sketch, an encoded rank response) key it by (input, Gen)
// and revalidate when the generation moves. The read is lock-free: it
// sits on the warm path of every cached rank, where taking the store
// mutex would make cache hits contend with Put/Delete/Compact.
//
// Fencing contract: read Gen before taking the manifest snapshot the
// derived result is computed from. The snapshot then reflects the
// observed generation or a newer one — never an older one — so an
// entry keyed by that generation can serve a concurrent reader fresher
// data than it asked for (linearizable) but can never serve any reader
// data older than the generation it observed.
func (s *Store) Gen() uint64 {
	return s.gen.Load()
}

// Len returns the number of stored sketches.
func (s *Store) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.manifest), nil
}

// Dir returns the store's root directory ("" for a mem-backed store).
func (s *Store) Dir() string { return s.dir }

// Backend returns the storage engine name ("fs" or "mem").
func (s *Store) Backend() string { return s.backend.name() }

// autoCompact is the background compaction loop: every interval it
// measures the dead fraction of segment bytes and compacts past the
// threshold. Close stops it. The channels arrive as parameters because
// Close nils the struct fields under the store lock.
func (s *Store) autoCompact(stop <-chan struct{}, done chan<- struct{}, every time.Duration, minGarbage float64) {
	defer close(done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		st := s.Stats()
		if st.SegmentBytes <= 0 {
			continue
		}
		garbage := float64(st.SegmentBytes-st.LiveBytes) / float64(st.SegmentBytes)
		if garbage < minGarbage {
			continue
		}
		s.Compact(context.Background()) // best effort; next tick retries
	}
}
