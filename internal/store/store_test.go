package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"misketch/internal/core"
	"misketch/internal/mi"
	"misketch/internal/table"
)

func buildSketch(t *testing.T, role core.Role, seed uint32, f func(g int) float64) *core.Sketch {
	t.Helper()
	const groups = 400
	var keys []string
	var vals []float64
	if role == core.RoleTrain {
		rng := rand.New(rand.NewSource(int64(seed) + 7))
		for i := 0; i < 5000; i++ {
			g := rng.Intn(groups)
			keys = append(keys, fmt.Sprintf("g%d", g))
			vals = append(vals, f(g))
		}
	} else {
		for g := 0; g < groups; g++ {
			keys = append(keys, fmt.Sprintf("g%d", g))
			vals = append(vals, f(g))
		}
	}
	tb := table.New(table.NewStringColumn("k", keys), table.NewFloatColumn("v", vals))
	s, err := core.Build(tb, "k", "v", role, core.Options{Method: core.TUPSK, Size: 512, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	if err := st.Put("tables/my table.csv#col@key", sk); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tables/my table.csv#col@key")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sk.Len() || got.Seed != sk.Seed {
		t.Error("round trip mismatch")
	}
	// Cold read (fresh store handle, no cache).
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st2.Get("tables/my table.csv#col@key")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != sk.Len() {
		t.Error("cold read mismatch")
	}
}

func TestGetMissing(t *testing.T) {
	st, _ := Open(t.TempDir())
	if _, err := st.Get("nope"); err == nil {
		t.Error("expected error for missing sketch")
	}
}

func TestPutEmptyNameRejected(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := st.Put("", &core.Sketch{Method: core.TUPSK}); err == nil {
		t.Error("empty name should be rejected")
	}
}

func TestListAndDelete(t *testing.T) {
	st, _ := Open(t.TempDir())
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	for _, name := range []string{"b#x", "a#y", "c#z"} {
		if err := st.Put(name, sk); err != nil {
			t.Fatal(err)
		}
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a#y" || names[2] != "c#z" {
		t.Errorf("List = %v", names)
	}
	if err := st.Delete("b#x"); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Len(); n != 2 {
		t.Errorf("Len = %d after delete", n)
	}
	if err := st.Delete("b#x"); err == nil {
		t.Error("double delete should error")
	}
	// Deleted sketches are not served from cache.
	if _, err := st.Get("b#x"); err == nil {
		t.Error("deleted sketch should be gone")
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"+sketchExt), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("List should ignore foreign entries: %v", names)
	}
}

func TestRankOrdersByMI(t *testing.T) {
	st, _ := Open(t.TempDir())
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	rng := rand.New(rand.NewSource(9))
	st.Put("cand/exact", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g % 5) }))
	st.Put("cand/noisy", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g%5) + 3*rng.NormFloat64() }))
	st.Put("cand/noise", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return rng.NormFloat64() }))
	st.Put("other/unrelated", buildSketch(t, core.RoleCandidate, 99, func(g int) float64 { return float64(g) })) // wrong seed

	ranked, skipped, err := st.Rank(train, "cand/", 100, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Name != "cand/exact" {
		t.Errorf("top = %s", ranked[0].Name)
	}
	if ranked[2].Name != "cand/noise" {
		t.Errorf("bottom = %s", ranked[2].Name)
	}
	if len(skipped) != 0 {
		t.Errorf("prefix filter should exclude the foreign-seed sketch before skipping: %v", skipped)
	}

	// Without the prefix, the wrong-seed sketch is skipped, not an error.
	_, skipped, err = st.Rank(train, "", 100, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "other/unrelated" {
		t.Errorf("skipped = %v", skipped)
	}
}

func TestRankSkipsTrainRoleSketches(t *testing.T) {
	st, _ := Open(t.TempDir())
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	st.Put("a-train-sketch", train)
	_, skipped, err := st.Rank(train, "", 0, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 {
		t.Errorf("train-role sketches are not candidates: %v", skipped)
	}
}

func TestConcurrentAccess(t *testing.T) {
	st, _ := Open(t.TempDir())
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for i := 0; i < 20; i++ {
				if err := st.Put(name, sk); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Get(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := st.Len(); n != 8 {
		t.Errorf("Len = %d", n)
	}
}

func TestNameEncodingRoundTrip(t *testing.T) {
	for _, name := range []string{"simple", "with/slash", "sp ace", "uni-cödé#x@y", "..", "CON"} {
		f := encodeName(name)
		if filepath.Base(f) != f {
			t.Errorf("%q encodes to path-traversing %q", name, f)
		}
		back, ok := decodeName(f)
		if !ok || back != name {
			t.Errorf("%q -> %q -> %q (%v)", name, f, back, ok)
		}
	}
	if _, ok := decodeName("not-base32!!!" + sketchExt); ok {
		t.Error("garbage filename should not decode")
	}
}
