package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"misketch/internal/core"
	"misketch/internal/mi"
	"misketch/internal/table"
)

func buildSketch(t *testing.T, role core.Role, seed uint32, f func(g int) float64) *core.Sketch {
	t.Helper()
	const groups = 400
	var keys []string
	var vals []float64
	if role == core.RoleTrain {
		rng := rand.New(rand.NewSource(int64(seed) + 7))
		for i := 0; i < 5000; i++ {
			g := rng.Intn(groups)
			keys = append(keys, fmt.Sprintf("g%d", g))
			vals = append(vals, f(g))
		}
	} else {
		for g := 0; g < groups; g++ {
			keys = append(keys, fmt.Sprintf("g%d", g))
			vals = append(vals, f(g))
		}
	}
	tb := table.New(table.NewStringColumn("k", keys), table.NewFloatColumn("v", vals))
	s, err := core.Build(tb, "k", "v", role, core.Options{Method: core.TUPSK, Size: 512, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	if err := st.Put("tables/my table.csv#col@key", sk); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("tables/my table.csv#col@key")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sk.Len() || got.Seed != sk.Seed {
		t.Error("round trip mismatch")
	}
	// Cold read (fresh store handle, no cache).
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st2.Get("tables/my table.csv#col@key")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != sk.Len() {
		t.Error("cold read mismatch")
	}
}

func TestGetMissing(t *testing.T) {
	st, _ := Open(t.TempDir())
	if _, err := st.Get("nope"); err == nil {
		t.Error("expected error for missing sketch")
	}
}

func TestPutEmptyNameRejected(t *testing.T) {
	st, _ := Open(t.TempDir())
	if err := st.Put("", &core.Sketch{Method: core.TUPSK}); err == nil {
		t.Error("empty name should be rejected")
	}
}

func TestListAndDelete(t *testing.T) {
	st, _ := Open(t.TempDir())
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	for _, name := range []string{"b#x", "a#y", "c#z"} {
		if err := st.Put(name, sk); err != nil {
			t.Fatal(err)
		}
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a#y" || names[2] != "c#z" {
		t.Errorf("List = %v", names)
	}
	if err := st.Delete("b#x"); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Len(); n != 2 {
		t.Errorf("Len = %d after delete", n)
	}
	if err := st.Delete("b#x"); err == nil {
		t.Error("double delete should error")
	}
	// Deleted sketches are not served from cache.
	if _, err := st.Get("b#x"); err == nil {
		t.Error("deleted sketch should be gone")
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"+sketchExt), 0o755); err != nil {
		t.Fatal(err)
	}
	// A validly named file with garbage content must not be indexed.
	if err := os.WriteFile(filepath.Join(dir, encodeName("fake")), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir) // reopen: reconcile scans the directory
	if err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("List should ignore foreign entries: %v", names)
	}
}

// writeLegacyStore fabricates a file-per-sketch store the way the
// pre-segment engine laid it out: flat (shards == 0) or sharded with a
// v1 manifest (shards > 0).
func writeLegacyStore(t *testing.T, dir string, sketches map[string]*core.Sketch, shards uint32) {
	t.Helper()
	metas := make(map[string]Meta, len(sketches))
	for name, sk := range sketches {
		path := filepath.Join(dir, encodeName(name))
		if shards > 0 {
			path = filepath.Join(dir, shardsDir, shardOf(name, shards), encodeName(name))
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sk.WriteTo(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		metas[name] = Meta{
			Name: name, Method: sk.Method, Role: sk.Role, Seed: sk.Seed,
			Size: sk.Size, Numeric: sk.Numeric, SourceRows: sk.SourceRows,
			Entries: sk.Len(), Bytes: n,
		}
	}
	if shards > 0 {
		if err := writeManifestV1(filepath.Join(dir, ManifestFile), shards, metas); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLegacyShardedLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	sketches := make(map[string]*core.Sketch)
	for i := 0; i < 20; i++ {
		sketches[fmt.Sprintf("t%02d#x", i)] = sk
	}
	writeLegacyStore(t, dir, sketches, 8)

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 20 {
		t.Fatalf("List after sharded migration = %d names", len(names))
	}
	got, err := st.Get("t07#x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sk.Len() || got.Seed != sk.Seed {
		t.Error("migrated sketch mismatch")
	}
	// The legacy files and shard directories are gone; the sketches now
	// live in segments.
	if _, err := os.Stat(filepath.Join(dir, shardsDir)); !os.IsNotExist(err) {
		t.Error("shards directory should be removed after migration")
	}
	if len(st.Segments()) == 0 {
		t.Error("expected at least one segment after migration")
	}
	// A reopen sees the migrated store directly (no second migration).
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st2.Len(); n != 20 {
		t.Errorf("Len after reopen = %d, want 20", n)
	}
}

func TestShardsOptionAcceptedAndIgnored(t *testing.T) {
	// The legacy fan-out option must stay accepted (callers set it) and
	// harmless — including values the old engine had to clamp.
	st, err := OpenWithOptions(t.TempDir(), OpenOptions{Shards: 1 << 32})
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	if err := st.Put("a#x", sk); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenWithOptions(st.Dir(), OpenOptions{Shards: 512})
	if err != nil {
		t.Fatalf("reopen with a different fan-out: %v", err)
	}
	if _, err := st2.Get("a#x"); err != nil {
		t.Error(err)
	}
}

func TestLegacyFlatLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	// Simulate a pre-manifest store: flat .misk files in the root.
	for _, name := range []string{"old/a#x", "old/b#y"} {
		f, err := os.Create(filepath.Join(dir, encodeName(name)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sk.WriteTo(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "old/a#x" {
		t.Fatalf("List after migration = %v", names)
	}
	// Files packed into segments; the root holds none.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), sketchExt) {
			t.Errorf("legacy file %s not migrated", e.Name())
		}
	}
	if _, err := st.Get("old/b#y"); err != nil {
		t.Error(err)
	}
	// DiskReads counts the Get's record decode; the migration pass is
	// backend-internal and does not count.
	if got := st.Stats().DiskReads; got != 1 {
		t.Errorf("DiskReads = %d, want 1", got)
	}
}

func TestOpenHealsLostOrCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	for _, name := range []string{"a#x", "b#x", "c#x"} {
		if err := st.Put(name, sk); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Lose the manifest entirely: Open rebuilds it from the segments.
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names, _ := st2.List(); len(names) != 3 {
		t.Fatalf("List after manifest loss = %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
		t.Error("recovery should persist the rebuilt manifest")
	}

	// Corrupt the manifest: Open must fall back to segment replay.
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names, _ := st3.List(); len(names) != 3 {
		t.Fatalf("List after manifest corruption = %v", names)
	}
	if got, err := st3.Get("b#x"); err != nil || got.Len() != sk.Len() {
		t.Errorf("Get after heal: %v", err)
	}
}

func TestOpenRemovesOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	if err := st.Put("a#x", sk); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate crashes mid-Flush and mid-compaction: orphaned temp files.
	for _, orphan := range []string{
		filepath.Join(dir, ManifestFile+".tmp456"),
		filepath.Join(dir, segmentsDir, "000000000099.seg.tmp"),
	} {
		if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	var leftovers []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) != 0 {
		t.Errorf("orphaned temp files survive open: %v", leftovers)
	}
}

func TestRebuildManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	if err := st.Put("a#x", sk); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// A clean store rebuilds to the same index.
	if err := st.RebuildManifest(); err != nil {
		t.Fatal(err)
	}
	names, _ := st.List()
	if len(names) != 1 || names[0] != "a#x" {
		t.Errorf("List after clean rebuild = %v", names)
	}
	m, ok := st.Meta("a#x")
	if !ok || m.Entries != sk.Len() || m.Seed != sk.Seed || m.Role != core.RoleCandidate {
		t.Errorf("rebuilt meta = %+v", m)
	}
	// Rebuild on the live handle also repairs out-of-band damage: here,
	// records appended behind the manifest's back by a foreign writer
	// (simulated by corrupting the manifest on disk).
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.RebuildManifest(); err != nil {
		t.Fatal(err)
	}
	if names, _ := st.List(); len(names) != 1 || names[0] != "a#x" {
		t.Errorf("List after repair rebuild = %v", names)
	}
	if got, err := st.Get("a#x"); err != nil || got.Len() != sk.Len() {
		t.Errorf("Get after rebuild: %v", err)
	}
}

func TestManifestMetadataRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 7, func(g int) float64 { return float64(g) })
	if err := st.Put("meta#x", sk); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := st2.Meta("meta#x")
	if !ok {
		t.Fatal("meta missing after reopen")
	}
	want := Meta{
		Name: "meta#x", Method: sk.Method, Role: sk.Role, Seed: sk.Seed,
		Size: sk.Size, Numeric: sk.Numeric, SourceRows: sk.SourceRows,
		Entries: sk.Len(), Bytes: m.Bytes, Segment: m.Segment, Offset: m.Offset,
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("meta = %+v, want %+v", m, want)
	}
	if m.Bytes <= 0 {
		t.Error("meta must record the record size")
	}
	if m.Segment == 0 || m.Offset < segHeaderBytes {
		t.Errorf("meta must locate the record: segment=%d offset=%d", m.Segment, m.Offset)
	}
}

func TestRankManifestOnlyFiltering(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	st.Put("cand/a", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g % 5) }))
	st.Put("cand/b", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g % 3) }))
	st.Put("cand/foreign", buildSketch(t, core.RoleCandidate, 99, func(g int) float64 { return float64(g) }))
	st.Put("cand/train-role", train)
	st.Put("other/c", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) }))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ranked, skipped, err := cold.Rank(train, "cand/", 0, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	wantSkipped := []string{"cand/foreign", "cand/train-role"}
	if !reflect.DeepEqual(skipped, wantSkipped) {
		t.Errorf("skipped = %v, want %v", skipped, wantSkipped)
	}
	// The acceptance bar: candidates excluded by prefix, seed, or role
	// must cost zero full-sketch deserializations on a cold store.
	if got := cold.Stats().DiskReads; got != 2 {
		t.Errorf("DiskReads = %d, want 2 (only the eligible candidates)", got)
	}
}

func TestRankTopK(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 7) })
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		noise := float64(i)
		st.Put(fmt.Sprintf("c%02d", i), buildSketch(t, core.RoleCandidate, 0, func(g int) float64 {
			return float64(g%7) + noise*rng.NormFloat64()
		}))
	}
	full, _, err := st.Rank(train, "", 0, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, len(full), len(full) + 5} {
		top, _, err := st.RankContext(context.Background(), train, "", 0, mi.DefaultK, k)
		if err != nil {
			t.Fatal(err)
		}
		want := full
		if k < len(full) {
			want = full[:k]
		}
		if !reflect.DeepEqual(top, want) {
			t.Errorf("topK=%d = %v, want %v", k, top, want)
		}
	}
}

func TestRankContextCancellation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	st.Put("c", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g % 5) }))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := st.RankContext(ctx, train, "", 0, mi.DefaultK, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestCacheEviction(t *testing.T) {
	// A budget that holds roughly one decoded sketch forces eviction
	// traffic while results stay correct.
	st, err := OpenWithOptions(t.TempDir(), OpenOptions{CacheBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if err := st.Put(n, sk); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for _, n := range names {
			got, err := st.Get(n)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != sk.Len() {
				t.Fatalf("Get(%s) wrong sketch", n)
			}
		}
	}
	stats := st.Stats()
	if stats.Evictions == 0 {
		t.Error("expected evictions under a tight byte budget")
	}
	if stats.CacheBytes > 8<<10 {
		t.Errorf("cache %d bytes exceeds its %d-byte bound", stats.CacheBytes, 8<<10)
	}
}

func TestCacheDisabled(t *testing.T) {
	st, err := OpenWithOptions(t.TempDir(), OpenOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	if err := st.Put("a", sk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Get("a"); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.DiskReads != 3 || stats.CacheHits != 0 {
		t.Errorf("disabled cache: DiskReads=%d CacheHits=%d, want 3 and 0", stats.DiskReads, stats.CacheHits)
	}
}

func TestConcurrentPutGetRank(t *testing.T) {
	st, err := OpenWithOptions(t.TempDir(), OpenOptions{CacheBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	cand := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g % 5) })
	for i := 0; i < 4; i++ {
		if err := st.Put(fmt.Sprintf("seed%d", i), cand); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for i := 0; i < 10; i++ {
				switch i % 4 {
				case 0:
					if err := st.Put(name, cand); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := st.Get(fmt.Sprintf("seed%d", i%4)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, _, err := st.RankContext(context.Background(), train, "seed", 0, mi.DefaultK, 2); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if _, err := st.List(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Len(); n != 12 {
		t.Errorf("Len = %d, want 12", n)
	}
}

func TestRankOrdersByMI(t *testing.T) {
	st, _ := Open(t.TempDir())
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	rng := rand.New(rand.NewSource(9))
	st.Put("cand/exact", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g % 5) }))
	st.Put("cand/noisy", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g%5) + 3*rng.NormFloat64() }))
	st.Put("cand/noise", buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return rng.NormFloat64() }))
	st.Put("other/unrelated", buildSketch(t, core.RoleCandidate, 99, func(g int) float64 { return float64(g) })) // wrong seed

	ranked, skipped, err := st.Rank(train, "cand/", 100, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Name != "cand/exact" {
		t.Errorf("top = %s", ranked[0].Name)
	}
	if ranked[2].Name != "cand/noise" {
		t.Errorf("bottom = %s", ranked[2].Name)
	}
	if len(skipped) != 0 {
		t.Errorf("prefix filter should exclude the foreign-seed sketch before skipping: %v", skipped)
	}

	// Without the prefix, the wrong-seed sketch is skipped, not an error.
	_, skipped, err = st.Rank(train, "", 100, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "other/unrelated" {
		t.Errorf("skipped = %v", skipped)
	}
}

func TestRankSkipsTrainRoleSketches(t *testing.T) {
	st, _ := Open(t.TempDir())
	train := buildSketch(t, core.RoleTrain, 0, func(g int) float64 { return float64(g % 5) })
	st.Put("a-train-sketch", train)
	_, skipped, err := st.Rank(train, "", 0, mi.DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 {
		t.Errorf("train-role sketches are not candidates: %v", skipped)
	}
}

func TestConcurrentAccess(t *testing.T) {
	st, _ := Open(t.TempDir())
	sk := buildSketch(t, core.RoleCandidate, 0, func(g int) float64 { return float64(g) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for i := 0; i < 20; i++ {
				if err := st.Put(name, sk); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Get(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := st.Len(); n != 8 {
		t.Errorf("Len = %d", n)
	}
}

func TestNameEncodingRoundTrip(t *testing.T) {
	for _, name := range []string{"simple", "with/slash", "sp ace", "uni-cödé#x@y", "..", "CON"} {
		f := encodeName(name)
		if filepath.Base(f) != f {
			t.Errorf("%q encodes to path-traversing %q", name, f)
		}
		back, ok := decodeName(f)
		if !ok || back != name {
			t.Errorf("%q -> %q -> %q (%v)", name, f, back, ok)
		}
	}
	if _, ok := decodeName("not-base32!!!" + sketchExt); ok {
		t.Error("garbage filename should not decode")
	}
}
