package store

// Kill-point crash-safety harness. Each scenario drives a store through
// acked mutations, injects a "crash" at a named point inside a later
// operation (the hook aborts the operation exactly where a real crash
// would have left the files), abandons the handle, reopens the
// directory, and asserts that every acked Put is present and every
// acked Delete stayed deleted — across the windows between segment
// append, manifest swap, and compaction's seal/swap/retire steps.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"misketch/internal/core"
)

var errInjectedCrash = errors.New("injected crash")

// crashAt arms the crash hook for one named point and returns a
// disarm func; the n-th hit (1-based) fires.
func crashAt(t *testing.T, point string, n int) func() {
	t.Helper()
	hits := 0
	testHookCrash = func(p string) error {
		if p == point {
			hits++
			if hits == n {
				return fmt.Errorf("%w at %s", errInjectedCrash, p)
			}
		}
		return nil
	}
	return func() { testHookCrash = nil }
}

// expectState reopens dir and asserts exactly the given sketches are
// present and readable with the right entry counts.
func expectState(t *testing.T, dir string, want map[string]*core.Sketch) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(want) {
		t.Fatalf("recovered %d sketches (%v), want %d", len(names), names, len(want))
	}
	for name, sk := range want {
		got, err := st.Get(name)
		if err != nil {
			t.Fatalf("acked Put %q lost: %v", name, err)
		}
		if got.Len() != sk.Len() || got.Seed != sk.Seed {
			t.Errorf("%q recovered wrong sketch", name)
		}
	}
	// The recovered store must rank, and a rebuild must agree.
	if err := st.RebuildManifest(); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Len(); n != len(want) {
		t.Errorf("rebuild after recovery disagrees: %d sketches", n)
	}
}

func crashSketch(t *testing.T, g int) *core.Sketch {
	t.Helper()
	return buildSketch(t, core.RoleCandidate, 0, func(x int) float64 { return float64((x + g) % 7) })
}

// TestCrashBetweenAppendAndManifest kills the process right after a
// Put's record is durable but before any index update: the acked Put
// must survive via segment-tail replay.
func TestCrashBetweenAppendAndManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*core.Sketch{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("pre%d", i)
		sk := crashSketch(t, i)
		if err := st.Put(name, sk); err != nil {
			t.Fatal(err)
		}
		want[name] = sk
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// Two more acked Puts after the flush, the second one "crashing"
	// after its append. Its record hit disk with an fsync before the
	// crash point, so it counts as acked too.
	sk3 := crashSketch(t, 3)
	if err := st.Put("post0", sk3); err != nil {
		t.Fatal(err)
	}
	want["post0"] = sk3
	disarm := crashAt(t, "put.appended", 1)
	sk4 := crashSketch(t, 4)
	err = st.Put("post1", sk4)
	disarm()
	if !errors.Is(err, errInjectedCrash) {
		t.Fatalf("Put = %v, want injected crash", err)
	}
	want["post1"] = sk4 // durable before the crash point
	expectState(t, dir, want)
}

// TestCrashDuringManifestSwap kills the process mid-Flush: before the
// rename (temp file debris) and after it (no directory sync). Both
// leave a store that recovers every acked mutation.
func TestCrashDuringManifestSwap(t *testing.T) {
	for _, point := range []string{"flush.written", "flush.renamed"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]*core.Sketch{}
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("s%d", i)
				sk := crashSketch(t, i)
				if err := st.Put(name, sk); err != nil {
					t.Fatal(err)
				}
				want[name] = sk
			}
			if err := st.Put("doomed", crashSketch(t, 9)); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("doomed"); err != nil {
				t.Fatal(err)
			}
			disarm := crashAt(t, point, 1)
			err = st.Flush()
			disarm()
			if !errors.Is(err, errInjectedCrash) {
				t.Fatalf("Flush = %v, want injected crash", err)
			}
			expectState(t, dir, want)
		})
	}
}

// TestCrashDuringCompaction kills the process at each compaction
// window: after the compacted segment is sealed (manifest still points
// at the sources), and after the manifest swap (sources not yet
// retired). Acked state must survive both, including deletes whose
// tombstones the compaction was folding away.
func TestCrashDuringCompaction(t *testing.T) {
	for _, point := range []string{"compact.sealed", "compact.swapped"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]*core.Sketch{}
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("s%d", i)
				sk := crashSketch(t, i)
				if err := st.Put(name, sk); err != nil {
					t.Fatal(err)
				}
				want[name] = sk
			}
			// Garbage for the compaction to fold: an overwrite and a delete.
			over := crashSketch(t, 40)
			if err := st.Put("s0", over); err != nil {
				t.Fatal(err)
			}
			want["s0"] = over
			if err := st.Delete("s3"); err != nil {
				t.Fatal(err)
			}
			delete(want, "s3")
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			disarm := crashAt(t, point, 1)
			_, err = st.Compact(context.Background())
			disarm()
			if !errors.Is(err, errInjectedCrash) {
				t.Fatalf("Compact = %v, want injected crash", err)
			}
			expectState(t, dir, want)

			// The reopened store must also have cleaned up whichever
			// side of the swap became redundant.
			st2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st2.Compact(context.Background()); err != nil {
				t.Fatalf("compaction after recovery: %v", err)
			}
			names, _ := st2.List()
			if len(names) != len(want) {
				t.Fatalf("post-recovery compaction lost state: %v", names)
			}
		})
	}
}

// TestCrashLeavesNoIndexedTempDebris reopens after an injected
// mid-flush crash and checks the temp file is swept.
func TestCrashLeavesNoIndexedTempDebris(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", crashSketch(t, 1)); err != nil {
		t.Fatal(err)
	}
	disarm := crashAt(t, "flush.written", 1)
	ferr := st.Flush()
	disarm()
	if !errors.Is(ferr, errInjectedCrash) {
		t.Fatalf("Flush = %v", ferr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawTmp := false
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			sawTmp = true
		}
	}
	if !sawTmp {
		t.Fatal("crash point should have left the manifest temp file behind")
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp debris survives reopen: %s", e.Name())
		}
	}
}

// TestFlushDoesNotCoverUnindexedRecords pins the covered-offset
// bookkeeping: a record that is durable in its segment but not yet in
// the in-memory index (a Put caught between append and manifest
// insertion) must stay beyond the covered horizon a concurrent Flush
// persists, so a crash right after that flush replays — not loses —
// the mutation.
func TestFlushDoesNotCoverUnindexedRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	skA := crashSketch(t, 1)
	if err := st.Put("a", skA); err != nil {
		t.Fatal(err)
	}
	// "b" reaches durability but the simulated crash strikes before the
	// index update — exactly the window a concurrent Flush could race.
	skB := crashSketch(t, 2)
	disarm := crashAt(t, "put.appended", 1)
	perr := st.Put("b", skB)
	disarm()
	if !errors.Is(perr, errInjectedCrash) {
		t.Fatalf("Put = %v, want injected crash", perr)
	}
	// The flush must persist a covered horizon below b's record.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the handle, reopen. b's durable record lies beyond
	// the persisted covered offset and must be replayed.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Get("b")
	if err != nil {
		t.Fatalf("durable-but-unindexed record lost after flush+crash: %v", err)
	}
	if got.Len() != skB.Len() {
		t.Error("replayed record decoded wrong sketch")
	}
	if _, err := st2.Get("a"); err != nil {
		t.Fatal(err)
	}
}
