package store

// Differential coverage for index-driven candidate selection: the same
// catalog served from an indexed store, a legacy (index-less) store, a
// mixed store, and the mem backend must produce bit-identical rankings
// and identical Pruned counts, and only the indexed store may skip
// decodes. The legacy fixtures are fabricated with the
// testHookSealLegacyFooter hook, which seals v1 (pre-index) segments.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"misketch/internal/core"
)

// diffSketches builds a deterministic catalog + train set with the same
// sliding-window geometry as batchStore, but with a per-sketch RNG so
// the exact same sketches can be written into several stores.
func diffSketches(t testing.TB, nCand, nTrains int) (names []string, cands, trains []*core.Sketch) {
	t.Helper()
	opt := core.Options{Method: core.TUPSK, Size: 128}
	for q := 0; q < nTrains; q++ {
		rng := rand.New(rand.NewSource(int64(1000 + q)))
		tb, err := core.NewStreamBuilder(core.RoleTrain, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		lo := q * 40
		for i := 0; i < 2000; i++ {
			tb.AddNum(fmt.Sprintf("g%d", lo+rng.Intn(120)), rng.NormFloat64())
		}
		trains = append(trains, tb.Sketch())
	}
	for c := 0; c < nCand; c++ {
		rng := rand.New(rand.NewSource(int64(c)))
		cb, err := core.NewStreamBuilder(core.RoleCandidate, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		lo := (c * 13) % 400
		for g := lo; g < lo+80; g++ {
			cb.AddNum(fmt.Sprintf("g%d", g), float64(g%6)+rng.NormFloat64())
		}
		names = append(names, fmt.Sprintf("c%03d", c))
		cands = append(cands, cb.Sketch())
	}
	return
}

// sealedStore writes the catalog, seals it (Close), and reopens so every
// record sits in a sealed segment — indexed, or legacy v1 when requested.
func sealedStore(t *testing.T, names []string, cands []*core.Sketch, legacy bool) *Store {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if err := st.Put(name, cands[i]); err != nil {
			t.Fatal(err)
		}
	}
	if legacy {
		testHookSealLegacyFooter = true
		defer func() { testHookSealLegacyFooter = false }()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	wantIndexed := 0
	if !legacy {
		wantIndexed = 1
	}
	if ss := st.Stats(); ss.IndexedSegments != wantIndexed {
		t.Fatalf("fixture has %d indexed segments, want %d (legacy=%v)", ss.IndexedSegments, wantIndexed, legacy)
	}
	return st
}

type diffRanking struct {
	query  []RankedSketch
	pruned int
	batch  []BatchQueryResult
}

// rankAll runs both ranking paths for every train and captures
// everything a differential comparison needs.
func rankAllTrains(t *testing.T, st *Store, trains []*core.Sketch, minJoin int, noIndex bool) []diffRanking {
	t.Helper()
	ctx := context.Background()
	res, err := st.RankBatch(ctx, trains, BatchOptions{MinJoinSize: minJoin, K: 3, NoIndex: noIndex})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]diffRanking, len(trains))
	for q, tr := range trains {
		ranked, _, err := st.RankQuery(ctx, tr, RankOptions{MinJoinSize: minJoin, K: 3, NoIndex: noIndex})
		if err != nil {
			t.Fatal(err)
		}
		out[q] = diffRanking{query: ranked, pruned: res.Queries[q].Pruned, batch: res.Queries}
	}
	return out
}

func diffCompare(t *testing.T, label string, got, want []diffRanking) {
	t.Helper()
	for q := range want {
		if got[q].pruned != want[q].pruned {
			t.Fatalf("%s train %d: pruned %d, want %d", label, q, got[q].pruned, want[q].pruned)
		}
		w, g := want[q].query, got[q].query
		if len(g) != len(w) {
			t.Fatalf("%s train %d: %d results, want %d", label, q, len(g), len(w))
		}
		for i := range w {
			if g[i].Name != w[i].Name || g[i].JoinSize != w[i].JoinSize ||
				g[i].Estimator != w[i].Estimator ||
				math.Float64bits(g[i].MI) != math.Float64bits(w[i].MI) {
				t.Fatalf("%s train %d result %d diverges: %+v vs %+v", label, q, i, g[i], w[i])
			}
		}
		wb, gb := want[q].batch[q].Ranked, got[q].batch[q].Ranked
		if len(gb) != len(wb) {
			t.Fatalf("%s train %d: batch %d results, want %d", label, q, len(gb), len(wb))
		}
		for i := range wb {
			if gb[i].Name != wb[i].Name || math.Float64bits(gb[i].MI) != math.Float64bits(wb[i].MI) {
				t.Fatalf("%s train %d batch result %d diverges", label, q, i)
			}
		}
	}
}

// TestIndexedRankingsBitIdentical is the core differential: indexed,
// legacy-fallback, mixed (one legacy + one indexed segment), and mem
// stores — plus the indexed store's own NoIndex reference walk — agree
// bit for bit on every ranking and on every Pruned count.
func TestIndexedRankingsBitIdentical(t *testing.T) {
	names, cands, trains := diffSketches(t, 80, 4)
	const minJoin = 20

	indexed := sealedStore(t, names, cands, false)
	legacy := sealedStore(t, names, cands, true)

	// Mixed: first half sealed legacy, second half sealed indexed.
	mixed := func() *Store {
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(names)/2; i++ {
			if err := st.Put(names[i], cands[i]); err != nil {
				t.Fatal(err)
			}
		}
		testHookSealLegacyFooter = true
		err = st.Close()
		testHookSealLegacyFooter = false
		if err != nil {
			t.Fatal(err)
		}
		if st, err = Open(dir); err != nil {
			t.Fatal(err)
		}
		for i := len(names) / 2; i < len(names); i++ {
			if err := st.Put(names[i], cands[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if st, err = Open(dir); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		ss := st.Stats()
		if ss.IndexedSegments != 1 || ss.Segments != 2 {
			t.Fatalf("mixed fixture: %d/%d segments indexed", ss.IndexedSegments, ss.Segments)
		}
		return st
	}()

	mem, err := OpenWithOptions("", OpenOptions{Backend: BackendMem})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close() })
	for i, name := range names {
		if err := mem.Put(name, cands[i]); err != nil {
			t.Fatal(err)
		}
	}

	ref := rankAllTrains(t, indexed, trains, minJoin, true) // historic full walk
	anyRanked, anyPruned := false, false
	for q := range ref {
		if len(ref[q].query) > 0 {
			anyRanked = true
		}
		if ref[q].pruned > 0 {
			anyPruned = true
		}
	}
	if !anyRanked || !anyPruned {
		t.Fatal("degenerate fixture: nothing ranked or nothing pruned")
	}

	diffCompare(t, "indexed", rankAllTrains(t, indexed, trains, minJoin, false), ref)
	diffCompare(t, "legacy", rankAllTrains(t, legacy, trains, minJoin, false), ref)
	diffCompare(t, "mixed", rankAllTrains(t, mixed, trains, minJoin, false), ref)
	diffCompare(t, "mem", rankAllTrains(t, mem, trains, minJoin, false), ref)

	// Only the indexed paths may skip decodes; the legacy store must
	// have answered everything through the full walk.
	if got := indexed.Stats().CandidatesSkippedNoDecode; got == 0 {
		t.Fatal("indexed store never skipped a decode")
	}
	if got := legacy.Stats().CandidatesSkippedNoDecode; got != 0 {
		t.Fatalf("legacy store claims %d decode skips", got)
	}
	if got := mixed.Stats().CandidatesSkippedNoDecode; got == 0 {
		t.Fatal("mixed store never skipped a decode on its indexed segment")
	}
}

// TestIndexedSelectionDecodesOnlyMatches pins the perf contract behind
// the index: with the cache disabled, a RankQuery against a sealed
// indexed catalog performs exactly one disk read per candidate whose
// key overlap beats MinJoinSize — the non-matching rest are never
// decoded (DiskReads is the store's decode counter).
func TestIndexedSelectionDecodesOnlyMatches(t *testing.T) {
	names, cands, trains := diffSketches(t, 80, 1)
	const minJoin = 20
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if err := st.Put(name, cands[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err = OpenWithOptions(dir, OpenOptions{CacheBytes: -1}); err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	train := trains[0]
	matching := 0
	for _, cand := range cands {
		if core.KeyOverlap(train, cand) > minJoin {
			matching++
		}
	}
	if matching == 0 || matching == len(cands) {
		t.Fatalf("degenerate fixture: %d/%d matching", matching, len(cands))
	}
	before := st.Stats()
	if _, _, err := st.RankQuery(context.Background(), train, RankOptions{MinJoinSize: minJoin, K: 3}); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if reads := after.DiskReads - before.DiskReads; reads != int64(matching) {
		t.Fatalf("indexed RankQuery decoded %d candidates, want exactly the %d matching ones", reads, matching)
	}
	if skipped := after.CandidatesSkippedNoDecode - before.CandidatesSkippedNoDecode; skipped != int64(len(cands)-matching) {
		t.Fatalf("skipped-without-decode %d, want %d", skipped, len(cands)-matching)
	}
}

// TestCrashDuringSealKeyIndex kills the seal between the record index
// flush and the key index write: the segment reopens footer-less
// (frozen), every acked Put survives via replay, ranking still works,
// and the next compaction pass rebuilds the index.
func TestCrashDuringSealKeyIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*core.Sketch{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("s%d", i)
		sk := crashSketch(t, i)
		if err := st.Put(name, sk); err != nil {
			t.Fatal(err)
		}
		want[name] = sk
	}
	disarm := crashAt(t, "seal.keyindex", 1)
	cerr := st.Close()
	disarm()
	if !errors.Is(cerr, errInjectedCrash) {
		t.Fatalf("Close = %v, want injected crash", cerr)
	}
	expectState(t, dir, want)

	// The torn index must not have produced an indexed segment; a forced
	// index pass rebuilds it and ranking agrees before and after.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if ss := st2.Stats(); ss.IndexedSegments != 0 {
		t.Fatalf("torn index surfaced as %d indexed segments", ss.IndexedSegments)
	}
	train := buildSketch(t, core.RoleTrain, 0, func(x int) float64 { return float64(x % 7) })
	beforeRank, _, err := st2.RankQuery(context.Background(), train, RankOptions{MinJoinSize: 5, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := st2.IndexSegments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Compacted {
		t.Fatal("IndexSegments skipped a store with an unindexed segment")
	}
	if ss := st2.Stats(); ss.IndexedSegments == 0 || ss.PostingBytes == 0 {
		t.Fatalf("backfill left no index: %+v", ss)
	}
	afterRank, _, err := st2.RankQuery(context.Background(), train, RankOptions{MinJoinSize: 5, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(afterRank) != len(beforeRank) {
		t.Fatalf("backfill changed the ranking: %d vs %d results", len(afterRank), len(beforeRank))
	}
	for i := range beforeRank {
		if afterRank[i].Name != beforeRank[i].Name ||
			math.Float64bits(afterRank[i].MI) != math.Float64bits(beforeRank[i].MI) {
			t.Fatalf("backfill changed result %d", i)
		}
	}
}

// TestIndexSegmentsNoOpWhenIndexed pins the backfill verb's idempotence:
// on a store whose every sealed segment already carries an index, a
// second IndexSegments pass must not rewrite anything.
func TestIndexSegmentsNoOpWhenIndexed(t *testing.T) {
	names, cands, _ := diffSketches(t, 10, 1)
	st := sealedStore(t, names, cands, false)
	cs, err := st.IndexSegments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Compacted {
		t.Fatal("IndexSegments rewrote an already-indexed store")
	}
	// A legacy store, by contrast, gets folded even without garbage.
	leg := sealedStore(t, names, cands, true)
	cs, err = leg.IndexSegments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Compacted {
		t.Fatal("IndexSegments skipped a legacy store")
	}
	if ss := leg.Stats(); ss.IndexedSegments == 0 {
		t.Fatal("legacy store still unindexed after IndexSegments")
	}
}
