//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps the first size bytes of f read-only. The mapping is
// page-aligned, so 8-byte-aligned file offsets stay 8-byte aligned in
// memory — the invariant the zero-copy record decode relies on.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
