package store

// The storage backend abstraction. The Store keeps the catalog index
// (manifest map), the decoded-sketch cache, and the ranking machinery;
// a backend owns the bytes. Two implementations exist:
//
//   - fs (fsbackend.go): segment-packed, mmap-backed durable storage —
//     the production engine.
//   - mem (below): everything in process memory, nothing on disk — the
//     backend tests and ephemeral services run on.
//
// The interface is deliberately narrow: append-style mutation, two load
// flavors (owned vs borrowed), pinning for borrowed lifetimes, and index
// persistence. Compaction and repair are fs-specific and reached by
// type assertion, not interface bloat — a mem store has nothing to
// compact or repair.

import (
	"fmt"
	"sync"

	"misketch/internal/core"
)

// Backend names accepted by OpenOptions.Backend.
const (
	BackendFS  = "fs"
	BackendMem = "mem"
)

// backend stores and retrieves sketch bytes for a Store.
type backend interface {
	// name reports the backend kind ("fs" or "mem").
	name() string
	// put durably stores the sketch under name and returns its location
	// (zero for backends without one).
	put(name string, sk *core.Sketch) (seg uint64, off, length int64, err error)
	// tombstone durably records the deletion of name, returning the
	// record's segment and end offset (zero for backends without one).
	tombstone(name string) (seg uint64, end int64, err error)
	// loadOwned returns a sketch owning all its memory.
	loadOwned(m Meta) (*core.Sketch, error)
	// loadView returns a sketch that may borrow backend memory, plus the
	// segment it borrows from (0 = owns its memory). A borrowed sketch
	// is valid only while its segment is pinned.
	loadView(m Meta) (sk *core.Sketch, tag uint64, err error)
	// pin takes read pins on the given segments; the returned func
	// releases them. Both are cheap; rank queries pin once per query.
	pin(segs map[uint64]struct{}) func()
	// persist writes the durable catalog index (the fs manifest); the
	// caller (Store) serializes calls and passes a consistent snapshot.
	// covered caps, per segment, the byte offset the snapshot accounts
	// for: a Put or Delete whose record is durable but whose index entry
	// is not yet in metas must not be covered, or a crash after this
	// persist would skip it on replay and lose an acked mutation. A nil
	// map means the snapshot is complete (single-threaded open paths).
	persist(metas map[string]Meta, covered map[uint64]int64) error
	// close releases backend resources. The backend must not be used
	// afterwards.
	close() error
}

// memBackend keeps every sketch in process memory: zero durability,
// zero syscalls. Servers and tests that want a diskless store run on it
// (OpenOptions.Backend = "mem").
type memBackend struct {
	mu       sync.Mutex
	sketches map[string]*core.Sketch
}

func newMemBackend() *memBackend {
	return &memBackend{sketches: make(map[string]*core.Sketch)}
}

func (b *memBackend) name() string { return BackendMem }

func (b *memBackend) put(name string, sk *core.Sketch) (uint64, int64, int64, error) {
	b.mu.Lock()
	b.sketches[name] = sk
	b.mu.Unlock()
	return 0, 0, sketchBytes(sk), nil
}

func (b *memBackend) tombstone(name string) (uint64, int64, error) {
	b.mu.Lock()
	delete(b.sketches, name)
	b.mu.Unlock()
	return 0, 0, nil
}

func (b *memBackend) loadOwned(m Meta) (*core.Sketch, error) {
	sk, _, err := b.loadView(m)
	return sk, err
}

func (b *memBackend) loadView(m Meta) (*core.Sketch, uint64, error) {
	b.mu.Lock()
	sk, ok := b.sketches[m.Name]
	b.mu.Unlock()
	if !ok {
		// A Delete raced the caller's manifest snapshot: the name is
		// genuinely gone, not corrupt, so the miss carries the sentinel.
		return nil, 0, fmt.Errorf("store: no sketch %q: %w", m.Name, ErrNotFound)
	}
	return sk, 0, nil
}

func (b *memBackend) pin(map[uint64]struct{}) func() { return func() {} }

func (b *memBackend) persist(map[string]Meta, map[uint64]int64) error { return nil }

func (b *memBackend) close() error { return nil }
