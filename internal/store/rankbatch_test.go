package store

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"misketch/internal/core"
)

// batchStore fills a store with candidates covering sliding key windows
// (so different trains overlap different candidate subsets) and returns
// it with nTrains train sketches over staggered windows of the same key
// universe. The geometry guarantees every prefilter regime appears:
// disjoint pairs (overlap 0), marginal pairs near the min-join cutoff,
// and fully-joinable pairs.
func batchStore(t testing.TB, nCand, nTrains int) (*Store, []*core.Sketch) {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	opt := core.Options{Method: core.TUPSK, Size: 128}
	trains := make([]*core.Sketch, nTrains)
	for q := range trains {
		tb, err := core.NewStreamBuilder(core.RoleTrain, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		lo := q * 40
		for i := 0; i < 2000; i++ {
			tb.AddNum(fmt.Sprintf("g%d", lo+rng.Intn(120)), rng.NormFloat64())
		}
		trains[q] = tb.Sketch()
	}
	for c := 0; c < nCand; c++ {
		cb, err := core.NewStreamBuilder(core.RoleCandidate, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		lo := (c * 13) % 400
		for g := lo; g < lo+80; g++ {
			cb.AddNum(fmt.Sprintf("g%d", g), float64(g%6)+rng.NormFloat64())
		}
		if err := st.Put(fmt.Sprintf("batch/c%03d#x", c), cb.Sketch()); err != nil {
			t.Fatal(err)
		}
	}
	return st, trains
}

// TestRankBatchMatchesPerQueryRankQuery pins the batch pipeline's core
// contract: every query in a batch returns bit-for-bit what an
// independent RankQuery returns — same candidates, same order, same MI
// bits — with and without a top-K bound, across worker counts.
func TestRankBatchMatchesPerQueryRankQuery(t *testing.T) {
	st, trains := batchStore(t, 60, 5)
	ctx := context.Background()
	const minJoin = 20
	for _, topK := range []int{0, 7} {
		for _, workers := range []int{1, 3} {
			res, err := st.RankBatch(ctx, trains, BatchOptions{
				Prefix: "batch/", MinJoinSize: minJoin, K: 3, TopK: topK, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Queries) != len(trains) {
				t.Fatalf("got %d query results for %d trains", len(res.Queries), len(trains))
			}
			anyRanked := false
			for q, tr := range trains {
				want, wantSkipped, err := st.RankQuery(ctx, tr, RankOptions{
					Prefix: "batch/", MinJoinSize: minJoin, K: 3, TopK: topK,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := res.Queries[q].Ranked
				if len(got) != len(want) {
					t.Fatalf("topK=%d workers=%d train %d: batch %d results, per-query %d",
						topK, workers, q, len(got), len(want))
				}
				if len(got) > 0 {
					anyRanked = true
				}
				for i := range want {
					if got[i].Name != want[i].Name || got[i].JoinSize != want[i].JoinSize ||
						got[i].Estimator != want[i].Estimator ||
						math.Float64bits(got[i].MI) != math.Float64bits(want[i].MI) {
						t.Fatalf("train %d result %d diverges: batch %+v vs per-query %+v",
							q, i, got[i], want[i])
					}
				}
				if len(res.Skipped) != len(wantSkipped) {
					t.Fatalf("batch skipped %d, per-query %d", len(res.Skipped), len(wantSkipped))
				}
			}
			if !anyRanked {
				t.Fatal("degenerate fixture: no query ranked anything")
			}
		}
	}
}

// TestRankBatchPrefilterExact proves the prefiltered pairs are exactly
// the pairs whose sketch join has at most MinJoinSize samples: the
// per-query pruned count must equal the number of eligible candidates
// whose key overlap (== join size, by TestKeyOverlapMatchesJoinSize) is
// at or below the cutoff, and ranked + pruned + small-but-estimated
// must account for every eligible candidate.
func TestRankBatchPrefilterExact(t *testing.T) {
	st, trains := batchStore(t, 60, 5)
	ctx := context.Background()
	const minJoin = 20
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.RankBatch(ctx, trains, BatchOptions{
		Prefix: "batch/", MinJoinSize: minJoin, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalPruned := 0
	for q, tr := range trains {
		wantPruned, wantRanked := 0, 0
		for _, name := range names {
			cand, err := st.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if n := core.KeyOverlap(tr, cand); n <= minJoin {
				wantPruned++
			} else {
				wantRanked++
			}
		}
		if got := res.Queries[q].Pruned; got != wantPruned {
			t.Fatalf("train %d: pruned %d pairs, want exactly %d (pairs with join size <= %d)",
				q, got, wantPruned, minJoin)
		}
		// Overlap above the cutoff means the estimator ran AND the
		// min-join filter passed, so ranked must account for the rest.
		if got := len(res.Queries[q].Ranked); got != wantRanked {
			t.Fatalf("train %d: ranked %d, want %d", q, got, wantRanked)
		}
		totalPruned += wantPruned
	}
	if totalPruned == 0 {
		t.Fatal("degenerate fixture: prefilter never fired")
	}
	ss := st.Stats()
	if ss.RankBatches != 1 {
		t.Fatalf("RankBatches = %d, want 1", ss.RankBatches)
	}
	if ss.PrunedPairs != int64(totalPruned) {
		t.Fatalf("PrunedPairs = %d, want %d", ss.PrunedPairs, totalPruned)
	}
}

// TestRankBatchMinJoinNegative checks that MinJoinSize -1 (keep even
// empty joins) disables the prefilter entirely: overlap can never be
// at or below -1, so every pair is estimated, exactly as RankQuery does.
func TestRankBatchMinJoinNegative(t *testing.T) {
	st, trains := batchStore(t, 20, 2)
	res, err := st.RankBatch(context.Background(), trains, BatchOptions{MinJoinSize: -1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for q, tr := range trains {
		if res.Queries[q].Pruned != 0 {
			t.Fatalf("train %d: pruned %d pairs under MinJoinSize -1", q, res.Queries[q].Pruned)
		}
		want, _, err := st.RankQuery(context.Background(), tr, RankOptions{MinJoinSize: -1, K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Queries[q].Ranked) != len(want) {
			t.Fatalf("train %d: batch %d results, per-query %d", q, len(res.Queries[q].Ranked), len(want))
		}
	}
}

// TestRankBatchSharedProbesAndScratch exercises the service plumbing:
// pre-compiled probes (some supplied, some nil) and a shared scratch
// pool must not change a single bit of any ranking.
func TestRankBatchSharedProbesAndScratch(t *testing.T) {
	st, trains := batchStore(t, 30, 3)
	ctx := context.Background()
	base, err := st.RankBatch(ctx, trains, BatchOptions{MinJoinSize: 10, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	probes := make([]*core.TrainProbe, len(trains))
	probes[0] = core.CompileTrainProbe(trains[0])
	probes[2] = core.CompileTrainProbe(trains[2])
	var pool core.ScratchPool
	got, err := st.RankBatch(ctx, trains, BatchOptions{
		MinJoinSize: 10, K: 3, Probes: probes, ScratchPool: &pool, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for q := range trains {
		if len(got.Queries[q].Ranked) != len(base.Queries[q].Ranked) {
			t.Fatalf("train %d: %d results != %d", q, len(got.Queries[q].Ranked), len(base.Queries[q].Ranked))
		}
		for i, w := range base.Queries[q].Ranked {
			g := got.Queries[q].Ranked[i]
			if g.Name != w.Name || math.Float64bits(g.MI) != math.Float64bits(w.MI) {
				t.Fatalf("train %d result %d diverges with shared probes: %+v vs %+v", q, i, g, w)
			}
		}
	}
}

// TestRankBatchValidation covers the up-front failure modes: mixed
// seeds, probe/train length mismatch, and the empty batch.
func TestRankBatchValidation(t *testing.T) {
	st, trains := batchStore(t, 5, 2)
	ctx := context.Background()

	odd := &core.Sketch{Method: core.TUPSK, Role: core.RoleTrain, Seed: trains[0].Seed + 1, Numeric: true}
	if _, err := st.RankBatch(ctx, []*core.Sketch{trains[0], odd}, BatchOptions{}); err == nil {
		t.Fatal("mixed-seed batch did not fail")
	}
	if _, err := st.RankBatch(ctx, trains, BatchOptions{Probes: make([]*core.TrainProbe, 1)}); err == nil {
		t.Fatal("probe length mismatch did not fail")
	}
	res, err := st.RankBatch(ctx, nil, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 0 || len(res.Skipped) != 0 {
		t.Fatalf("empty batch returned %+v", res)
	}
}

// TestRankBatchDuplicateHashCandidate pins the malformed-candidate
// semantics against RankQuery's: a candidate with duplicated key hashes
// is exempt from the prefilter, so a duplicate that joins a train entry
// fails the batch (as it fails the single query), while one that joins
// nothing is estimated and ranked normally.
func TestRankBatchDuplicateHashCandidate(t *testing.T) {
	st, trains := batchStore(t, 4, 1)
	ctx := context.Background()
	train := trains[0]

	// A duplicate hash that matches nothing in the train sketch: the
	// batch must behave exactly like RankQuery (rank it normally).
	benign := &core.Sketch{
		Method: core.TUPSK, Role: core.RoleCandidate, Seed: train.Seed, Numeric: true,
		KeyHashes: []uint32{0xdeadbeef, 0xdeadbeef}, Nums: []float64{1, 2}, SourceRows: 2,
	}
	if !benign.HasDuplicateKeyHashes() {
		t.Fatal("fixture is not duplicated")
	}
	if err := st.Put("dup/benign", benign); err != nil {
		t.Fatal(err)
	}
	res, err := st.RankBatch(ctx, trains, BatchOptions{MinJoinSize: -1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := st.RankQuery(ctx, train, RankOptions{MinJoinSize: -1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries[0].Ranked) != len(want) {
		t.Fatalf("batch %d results, per-query %d", len(res.Queries[0].Ranked), len(want))
	}

	// A duplicate that joins: both paths must fail.
	joining := &core.Sketch{
		Method: core.TUPSK, Role: core.RoleCandidate, Seed: train.Seed, Numeric: true,
		KeyHashes: []uint32{train.KeyHashes[0], train.KeyHashes[0]}, Nums: []float64{1, 2}, SourceRows: 2,
	}
	if err := st.Put("dup/joining", joining); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.RankQuery(ctx, train, RankOptions{MinJoinSize: -1, K: 3}); err == nil {
		t.Fatal("RankQuery accepted a joining duplicate")
	}
	if _, err := st.RankBatch(ctx, trains, BatchOptions{MinJoinSize: -1, K: 3}); err == nil {
		t.Fatal("RankBatch accepted a joining duplicate")
	}
}

// TestStatsAreProcessLifetime pins the documented Stats contract: the
// activity counters (puts, deletes, rank queries, batches, pruned
// pairs, disk reads) describe one handle's lifetime and are NOT
// persisted — reopening the same directory starts every counter at
// zero while the content-describing fields survive via the manifest.
func TestStatsAreProcessLifetime(t *testing.T) {
	dir := t.TempDir()
	st, trains := func() (*Store, []*core.Sketch) {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		opt := core.Options{Method: core.TUPSK, Size: 64}
		tb, _ := core.NewStreamBuilder(core.RoleTrain, true, opt)
		for i := 0; i < 800; i++ {
			tb.AddNum(fmt.Sprintf("g%d", rng.Intn(40)), rng.NormFloat64())
		}
		for c := 0; c < 6; c++ {
			cb, _ := core.NewStreamBuilder(core.RoleCandidate, true, opt)
			for g := 0; g < 40; g++ {
				cb.AddNum(fmt.Sprintf("g%d", g), rng.NormFloat64())
			}
			if err := st.Put(fmt.Sprintf("c%d", c), cb.Sketch()); err != nil {
				t.Fatal(err)
			}
		}
		return st, []*core.Sketch{tb.Sketch()}
	}()
	ctx := context.Background()
	if _, _, err := st.RankQuery(ctx, trains[0], RankOptions{MinJoinSize: 5, K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RankBatch(ctx, trains, BatchOptions{MinJoinSize: 1 << 30, K: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("c5"); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()
	if before.Puts != 6 || before.Deletes != 1 || before.RankQueries != 1 ||
		before.RankBatches != 1 || before.PrunedPairs == 0 {
		t.Fatalf("pre-close stats did not accumulate: %+v", before)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	after := re.Stats()
	if after.Sketches != 5 {
		t.Fatalf("reopened store indexes %d sketches, want 5", after.Sketches)
	}
	if after.Puts != 0 || after.Deletes != 0 || after.RankQueries != 0 ||
		after.RankBatches != 0 || after.PrunedPairs != 0 || after.DiskReads != 0 {
		t.Fatalf("reopened handle inherited activity counters: %+v", after)
	}
}
