package store

import "os"

// Test hooks. Production builds never set these; the crash-safety and
// open-cost regression tests use them to (a) simulate a process dying at
// a precise point inside a mutation — the hook returns an error, the
// operation aborts exactly where a crash would have left it, and the
// test reopens the directory — and (b) count file opens, pinning the
// invariant that opening or rebuilding an intact store touches O(segment
// files), never O(sketches).

// testHookCrash, when non-nil, is consulted at named crash points; a
// non-nil return aborts the surrounding operation at that point. Points:
//
//	put.appended      — sketch record durable, store index not yet updated
//	flush.written     — manifest temp file written+synced, not yet renamed
//	flush.renamed     — manifest renamed into place, directory not synced
//	seal.keyindex     — record index bytes written, key index section and
//	                    footer not yet; the segment reopens unsealed and
//	                    is frozen-replayed, losing only the index
//	compact.sealed    — compacted segment durable, manifest still on sources
//	compact.swapped   — manifest references the compacted segment, source
//	                    segments not yet retired/unlinked
var testHookCrash func(point string) error

func crashPoint(p string) error {
	if testHookCrash != nil {
		return testHookCrash(p)
	}
	return nil
}

// testHookSealLegacyFooter, when set, makes seal write the pre-key-index
// v1 footer (no index section) — how the differential tests fabricate
// bit-faithful legacy segments and exercise the real fallback path.
var testHookSealLegacyFooter bool

// testHookFileOpen, when non-nil, observes every file the store layer
// opens (segment and manifest reads — not temp-file creation).
var testHookFileOpen func(path string)

// openFile wraps os.OpenFile with the open-count hook.
func openFile(path string, flag int, perm os.FileMode) (*os.File, error) {
	if testHookFileOpen != nil {
		testHookFileOpen(path)
	}
	return os.OpenFile(path, flag, perm)
}
