package store

import (
	"container/list"

	"misketch/internal/core"
)

// lruCache is a byte-bounded LRU of decoded sketches, replacing the
// unbounded map a small store could get away with: a catalog of millions
// of sketches must not grow memory with every Get. It is not safe for
// concurrent use on its own; Store serializes access under its mutex.
type lruCache struct {
	max  int64 // byte budget
	used int64

	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	name  string
	sk    *core.Sketch
	bytes int64
}

func newLRUCache(max int64) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// sketchBytes approximates the resident size of a decoded sketch: the
// slice payloads plus per-string and fixed struct overhead.
func sketchBytes(sk *core.Sketch) int64 {
	n := int64(96) // struct and slice headers
	n += 4 * int64(len(sk.KeyHashes))
	n += 8 * int64(len(sk.Nums))
	for _, s := range sk.Strs {
		n += int64(len(s)) + 16
	}
	return n
}

func (c *lruCache) get(name string) (*core.Sketch, bool) {
	if e, ok := c.items[name]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*lruEntry).sk, true
	}
	c.misses++
	return nil, false
}

func (c *lruCache) add(name string, sk *core.Sketch) {
	b := sketchBytes(sk)
	if b > c.max {
		// Larger than the whole budget: never resident — and if an update
		// grew an existing entry past the budget, drop it too.
		c.remove(name)
		return
	}
	if e, ok := c.items[name]; ok {
		ent := e.Value.(*lruEntry)
		c.used += b - ent.bytes
		ent.sk, ent.bytes = sk, b
		c.ll.MoveToFront(e)
	} else {
		c.items[name] = c.ll.PushFront(&lruEntry{name: name, sk: sk, bytes: b})
		c.used += b
	}
	// Evict from the cold end; never evict the entry just touched.
	for c.used > c.max && c.ll.Len() > 1 {
		c.evict(c.ll.Back())
	}
}

func (c *lruCache) remove(name string) {
	if e, ok := c.items[name]; ok {
		ent := e.Value.(*lruEntry)
		c.ll.Remove(e)
		delete(c.items, name)
		c.used -= ent.bytes
	}
}

func (c *lruCache) evict(e *list.Element) {
	ent := e.Value.(*lruEntry)
	c.ll.Remove(e)
	delete(c.items, ent.name)
	c.used -= ent.bytes
	c.evictions++
}
