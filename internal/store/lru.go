package store

import (
	"container/list"

	"misketch/internal/core"
)

// lruCache is a byte-bounded LRU of decoded sketches, replacing the
// unbounded map a small store could get away with: a catalog of millions
// of sketches must not grow memory with every load. Entries are tagged
// with the segment their sketch borrows memory from (0 = the sketch owns
// its memory), so a compaction retiring segments can purge the views
// that alias them before the mappings go away. It is not safe for
// concurrent use on its own; Store serializes access under its mutex.
type lruCache struct {
	max  int64 // byte budget
	used int64

	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	name  string
	sk    *core.Sketch
	bytes int64
	seg   uint64 // segment the sketch borrows from; 0 = owned memory
}

func newLRUCache(max int64) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// sketchBytes approximates the resident (or, for a borrowed view, the
// referenced) size of a decoded sketch: the array payloads plus
// per-string and fixed struct overhead. Charging views for the mapped
// bytes they keep hot preserves the budget's meaning as "sketch bytes
// this cache keeps reachable".
func sketchBytes(sk *core.Sketch) int64 {
	n := int64(96) // struct and slice headers
	n += 4 * int64(len(sk.KeyHashes))
	// Numeric sketches memoize their value-order array (NumValOrder,
	// i32 per entry) the first time a ranking query sorts them; cached
	// sketches always end up paying it, so charge it up front rather
	// than undercount every numeric entry by a third.
	n += (8 + 4) * int64(len(sk.Nums))
	for _, s := range sk.Strs {
		n += int64(len(s)) + 16
	}
	return n
}

func (c *lruCache) get(name string) (*core.Sketch, uint64, bool) {
	if e, ok := c.items[name]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		ent := e.Value.(*lruEntry)
		return ent.sk, ent.seg, true
	}
	c.misses++
	return nil, 0, false
}

func (c *lruCache) add(name string, sk *core.Sketch, seg uint64) {
	b := sketchBytes(sk)
	if b > c.max {
		// Larger than the whole budget: never resident — and if an update
		// grew an existing entry past the budget, drop it too.
		c.remove(name)
		return
	}
	if e, ok := c.items[name]; ok {
		ent := e.Value.(*lruEntry)
		c.used += b - ent.bytes
		ent.sk, ent.bytes, ent.seg = sk, b, seg
		c.ll.MoveToFront(e)
	} else {
		c.items[name] = c.ll.PushFront(&lruEntry{name: name, sk: sk, bytes: b, seg: seg})
		c.used += b
	}
	// Evict from the cold end; never evict the entry just touched.
	for c.used > c.max && c.ll.Len() > 1 {
		c.evict(c.ll.Back())
	}
}

func (c *lruCache) remove(name string) {
	if e, ok := c.items[name]; ok {
		ent := e.Value.(*lruEntry)
		c.ll.Remove(e)
		delete(c.items, name)
		c.used -= ent.bytes
	}
}

func (c *lruCache) evict(e *list.Element) {
	ent := e.Value.(*lruEntry)
	c.ll.Remove(e)
	delete(c.items, ent.name)
	c.used -= ent.bytes
	c.evictions++
}

// purgeSegments drops every entry borrowing from the given segments —
// called before a compaction's sources are torn down.
func (c *lruCache) purgeSegments(segs map[uint64]*segment) {
	for e := c.ll.Front(); e != nil; {
		next := e.Next()
		ent := e.Value.(*lruEntry)
		if ent.seg != 0 {
			if _, gone := segs[ent.seg]; gone {
				c.ll.Remove(e)
				delete(c.items, ent.name)
				c.used -= ent.bytes
			}
		}
		e = next
	}
}
