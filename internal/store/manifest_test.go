package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"misketch/internal/core"
)

func TestManifestV2RoundTrip(t *testing.T) {
	metas := map[string]Meta{
		"tables/a.csv#x@k": {
			Name: "tables/a.csv#x@k", Method: core.TUPSK, Role: core.RoleCandidate,
			Seed: 42, Size: 1024, Numeric: true, SourceRows: 123456, Entries: 1024,
			Bytes: 13000, Segment: 3, Offset: 16,
		},
		"b#y": {
			Name: "b#y", Method: core.LV2SK, Role: core.RoleTrain,
			Seed: 7, Size: 256, Numeric: false, SourceRows: 99, Entries: 80,
			Bytes: 900, Segment: 3, Offset: 13016,
		},
		"empty": {
			Name: "empty", Method: core.CSK, Role: core.RoleCandidate,
			Seed: 1, Size: 64, Numeric: true, SourceRows: 0, Entries: 0,
			Bytes: 48, Segment: 5, Offset: 16,
		},
	}
	segs := []manifestSeg{
		{seq: 3, kind: segKindCompacted, covered: 13916},
		{seq: 5, kind: segKindAppend, covered: 64},
	}
	path := filepath.Join(t.TempDir(), ManifestFile)
	if err := writeManifestV2(path, 6, segs, metas); err != nil {
		t.Fatal(err)
	}
	man, err := loadManifestV2(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.nextSeq != 6 {
		t.Errorf("nextSeq = %d, want 6", man.nextSeq)
	}
	if !reflect.DeepEqual(man.segs, segs) {
		t.Errorf("segment list mismatch:\n got %+v\nwant %+v", man.segs, segs)
	}
	if !reflect.DeepEqual(man.metas, metas) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", man.metas, metas)
	}
}

func TestLoadManifestV2RejectsCorruptInput(t *testing.T) {
	dir := t.TempDir()

	// A valid manifest with any byte flipped must fail the checksum.
	path := filepath.Join(dir, ManifestFile)
	metas := map[string]Meta{"a": {Name: "a", Method: core.TUPSK, Entries: 4, Bytes: 80, Segment: 1, Offset: 16}}
	if err := writeManifestV2(path, 2, []manifestSeg{{seq: 1, covered: 96}}, metas); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{6, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		bad := filepath.Join(dir, "flipped")
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadManifestV2(bad); err == nil {
			t.Errorf("bit flip at %d: expected error", i)
		}
	}

	for name, content := range map[string][]byte{
		"bad-magic":   []byte("NOPE additional bytes"),
		"truncated":   []byte("MIS"),
		"bad-version": append([]byte("MISX"), 99, 0, 0, 0, 0, 0, 0, 0, 0),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadManifestV2(p); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// A v1 manifest is not corrupt — it is a legacy store marker.
	v1 := filepath.Join(dir, "v1")
	if err := writeManifestV1(v1, 64, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifestV2(v1); err == nil {
		t.Error("v1 manifest: expected errManifestVersion")
	}
	if _, err := loadManifestV2(filepath.Join(dir, "missing")); !os.IsNotExist(err) {
		t.Errorf("missing manifest should surface as not-exist, got %v", err)
	}
}

func TestShardOfIsStableAndBounded(t *testing.T) {
	const shards = 16
	seen := map[string]bool{}
	for _, name := range []string{"a", "b", "table.csv#col@key", "uni-cödé", ""} {
		s1 := shardOf(name, shards)
		s2 := shardOf(name, shards)
		if s1 != s2 {
			t.Errorf("shardOf(%q) unstable: %s vs %s", name, s1, s2)
		}
		if len(s1) != 4 {
			t.Errorf("shardOf(%q) = %q, want 4 hex digits", name, s1)
		}
		seen[s1] = true
	}
	if len(seen) < 2 {
		t.Error("expected some fan-out across shard names")
	}
}
