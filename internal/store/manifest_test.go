package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"misketch/internal/core"
)

func TestManifestFileRoundTrip(t *testing.T) {
	metas := map[string]Meta{
		"tables/a.csv#x@k": {
			Name: "tables/a.csv#x@k", Method: core.TUPSK, Role: core.RoleCandidate,
			Seed: 42, Size: 1024, Numeric: true, SourceRows: 123456, Entries: 1024, Bytes: 13000,
		},
		"b#y": {
			Name: "b#y", Method: core.LV2SK, Role: core.RoleTrain,
			Seed: 7, Size: 256, Numeric: false, SourceRows: 99, Entries: 80, Bytes: 900,
		},
		"empty": {
			Name: "empty", Method: core.CSK, Role: core.RoleCandidate,
			Seed: 1, Size: 64, Numeric: true, SourceRows: 0, Entries: 0, Bytes: 40,
		},
	}
	path := filepath.Join(t.TempDir(), ManifestFile)
	if err := writeManifest(path, 32, metas); err != nil {
		t.Fatal(err)
	}
	shards, got, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 32 {
		t.Errorf("shards = %d, want 32", shards)
	}
	if !reflect.DeepEqual(got, metas) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, metas)
	}
}

func TestLoadManifestRejectsCorruptInput(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"bad-magic":   []byte("NOPE additional bytes"),
		"truncated":   []byte("MIS"),
		"bad-version": append([]byte("MISX"), 99),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadManifest(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, _, err := loadManifest(filepath.Join(dir, "missing")); !os.IsNotExist(err) {
		t.Errorf("missing manifest should surface as not-exist, got %v", err)
	}
}

func TestShardOfIsStableAndBounded(t *testing.T) {
	const shards = 16
	seen := map[string]bool{}
	for _, name := range []string{"a", "b", "table.csv#col@key", "uni-cödé", ""} {
		s1 := shardOf(name, shards)
		s2 := shardOf(name, shards)
		if s1 != s2 {
			t.Errorf("shardOf(%q) unstable: %s vs %s", name, s1, s2)
		}
		if len(s1) != 4 {
			t.Errorf("shardOf(%q) = %q, want 4 hex digits", name, s1)
		}
		seen[s1] = true
	}
	if len(seen) < 2 {
		t.Error("expected some fan-out across shard names")
	}
}
