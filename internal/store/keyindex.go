package store

// The per-segment inverted key index: the structure that turns candidate
// selection from O(catalog) into O(matching candidates). Coordinated
// sampling makes a (train, candidate) pair's sketch join size exactly
// computable from key hashes alone (core.KeyOverlap), so a sealed
// segment can precompute hash → posting list of (record, multiplicity)
// once and let every future query intersect the train's distinct hashes
// against it — exact overlap counts, no record decoded.
//
// Section layout (little-endian, appended between a sealed segment's
// record index and its footer, covered by the footer's whole-file CRC):
//
//	header (16 B): magic "MKIX" | version u8 = 1 | flags u8 | pad u16 |
//	               payloadLen u32 | crc u32 (CRC-32C of the payload)
//	payload:
//	  recCount uvarint
//	  recOffsets: recCount × uvarint — candidate-record offsets within
//	              the segment, delta-coded (first absolute), ascending
//	  dupBitmap:  ceil(recCount/8) bytes — bit set when the record's
//	              sketch repeats a key hash (prefilter-exempt, see below)
//	  slotCount u32 — open-addressing table size (power of two, load
//	              factor <= 1/2; zero when the segment has no keys)
//	  keys: slotCount × u32 — key hash per slot
//	  refs: slotCount × u32 — posting-list offset+1 into the blob; 0 =
//	              empty slot
//	  postings:   per list: count uvarint, then count × (ordinal-delta
//	              uvarint, multiplicity uvarint), ordinals strictly
//	              ascending record positions in recOffsets
//
// Only candidate-role sketch records are indexed: train-role records and
// tombstones never rank, and a record the index omits is simply never
// selected — exactly the manifest's own admission rule. Records whose
// sketch repeats a key hash are malformed-but-tolerated input; ranking
// exempts them from the prefilter (they must fail or rank through the
// estimator exactly as the full walk would), so the index marks them in
// dupBitmap and selection always visits them.
//
// Fail-closed contract: the section carries its own CRC and every
// referenced posting list is structurally validated before first use
// (parseKeyIndex); any defect makes the whole segment fall back to the
// full candidate walk. A corrupt index can cost time, never results.

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"misketch/internal/binio"
)

const (
	kixMagic       = "MKIX"
	kixVersion     = 1
	kixHeaderBytes = 16

	// maxKixMult caps a single posting's multiplicity (and with it the
	// overlap accumulator's per-term magnitude). Both the encoder and
	// the parser enforce it, so a segment that legitimately exceeds the
	// cap is stored without an index rather than with one the parser
	// would reject.
	maxKixMult = 1 << 30
)

// kixPost is one posting: a record ordinal (position in recOffsets) and
// how many of the record's sketch entries carry the hash.
type kixPost struct {
	ord  uint32
	mult uint32
}

// keyIndexBuilder accumulates the index while the segment's records are
// walked in offset order at seal time.
type keyIndexBuilder struct {
	offsets []int64
	dup     []byte
	posts   map[uint32][]kixPost
	keys    []uint32 // distinct hashes, insertion order
	bad     bool     // a cap was exceeded; emit no index
}

func newKeyIndexBuilder() *keyIndexBuilder {
	return &keyIndexBuilder{posts: make(map[uint32][]kixPost)}
}

// add indexes one candidate record's key hashes. Records must arrive in
// strictly ascending offset order.
func (b *keyIndexBuilder) add(off int64, hashes []uint32) {
	ord := uint32(len(b.offsets))
	b.offsets = append(b.offsets, off)
	b.dup = append(b.dup, 0)
	dup := false
	for _, hk := range hashes {
		pl := b.posts[hk]
		if n := len(pl); n > 0 && pl[n-1].ord == ord {
			pl[n-1].mult++
			if pl[n-1].mult > maxKixMult {
				b.bad = true
			}
			dup = true
			continue
		}
		if len(pl) == 0 {
			b.keys = append(b.keys, hk)
		}
		b.posts[hk] = append(pl, kixPost{ord: ord, mult: 1})
	}
	if dup {
		b.dup[ord/8] |= 1 << (ord % 8)
	}
}

// encode assembles the on-disk section. ok is false when the segment
// cannot be indexed within the format's bounds (the caller seals without
// an index and queries fall back to the walk).
func (b *keyIndexBuilder) encode() (section []byte, ok bool) {
	if b.bad || len(b.offsets) > math.MaxInt32 {
		return nil, false
	}
	sort.Slice(b.keys, func(i, j int) bool { return b.keys[i] < b.keys[j] })

	payload := make([]byte, 0, 64+8*len(b.offsets))
	payload = binio.AppendUvarint(payload, uint64(len(b.offsets)))
	prev := int64(0)
	for _, off := range b.offsets {
		payload = binio.AppendUvarint(payload, uint64(off-prev))
		prev = off
	}
	payload = append(payload, b.dup[:(len(b.offsets)+7)/8]...)

	slots := 0
	if len(b.keys) > 0 {
		slots = 4
		for slots < 2*len(b.keys) {
			slots <<= 1
		}
	}
	payload = binio.AppendU32(payload, uint32(slots))
	tableAt := len(payload)
	payload = append(payload, make([]byte, 8*slots)...)
	keys, refs := payload[tableAt:tableAt+4*slots], payload[tableAt+4*slots:tableAt+8*slots]

	var blob []byte
	mask := uint32(slots - 1)
	for _, hk := range b.keys {
		if uint64(len(blob))+1 > math.MaxUint32 {
			return nil, false
		}
		ref := uint32(len(blob)) + 1
		pl := b.posts[hk]
		blob = binio.AppendUvarint(blob, uint64(len(pl)))
		prevOrd := uint32(0)
		for i, p := range pl {
			d := p.ord
			if i > 0 {
				d = p.ord - prevOrd
			}
			prevOrd = p.ord
			blob = binio.AppendUvarint(blob, uint64(d))
			blob = binio.AppendUvarint(blob, uint64(p.mult))
		}
		i := hk & mask
		for binio.U32At(refs, int(i)*4) != 0 {
			i = (i + 1) & mask
		}
		binio.PutU32(keys[i*4:], hk)
		binio.PutU32(refs[i*4:], ref)
	}
	payload = append(payload, blob...)
	if uint64(len(payload)) > math.MaxUint32 {
		return nil, false
	}

	section = make([]byte, 0, kixHeaderBytes+len(payload))
	section = append(section, kixMagic...)
	section = append(section, kixVersion, 0, 0, 0)
	section = binio.AppendU32(section, uint32(len(payload)))
	section = binio.AppendU32(section, crc32.Checksum(payload, crcTable))
	return append(section, payload...), true
}

// keyIndex is a parsed, validated index ready to be probed straight out
// of the segment mapping.
type keyIndex struct {
	recOffsets []int64
	dup        []byte
	keys       []byte // 4 bytes per slot
	refs       []byte // 4 bytes per slot
	mask       uint32
	slots      int
	postings   []byte
}

// records returns the number of indexed candidate records.
func (ix *keyIndex) records() int { return len(ix.recOffsets) }

// ordinalOf maps a record offset to its index ordinal.
func (ix *keyIndex) ordinalOf(off int64) (int, bool) {
	i := sort.Search(len(ix.recOffsets), func(i int) bool { return ix.recOffsets[i] >= off })
	if i < len(ix.recOffsets) && ix.recOffsets[i] == off {
		return i, true
	}
	return 0, false
}

// isDup reports whether the record's sketch repeats a key hash (and must
// therefore always be visited, mirroring the prefilter exemption).
func (ix *keyIndex) isDup(ord int) bool {
	return ix.dup[ord/8]&(1<<(ord%8)) != 0
}

// accumulate adds weight × multiplicity into acc[ordinal] for every
// posting of hk, appending newly touched ordinals to touched (so the
// caller can reset acc in O(touched)). Bounds were validated at parse
// time; acc must have records() elements.
func (ix *keyIndex) accumulate(hk uint32, weight int64, acc []int64, touched []int32) []int32 {
	if ix.slots == 0 {
		return touched
	}
	i := hk & ix.mask
	for probes := 0; probes < ix.slots; probes++ {
		ref := binio.U32At(ix.refs, int(i)*4)
		if ref == 0 {
			return touched
		}
		if binio.U32At(ix.keys, int(i)*4) == hk {
			off := int(ref) - 1
			n, sz := binio.UvarintAt(ix.postings, off)
			off += sz
			var ord uint32
			for j := uint64(0); j < n; j++ {
				d, sz := binio.UvarintAt(ix.postings, off)
				off += sz
				m, sz := binio.UvarintAt(ix.postings, off)
				off += sz
				ord += uint32(d)
				if acc[ord] == 0 {
					touched = append(touched, int32(ord))
				}
				acc[ord] += weight * int64(m)
			}
			return touched
		}
		i = (i + 1) & ix.mask
	}
	return touched
}

// parseKeyIndex decodes and fully validates a key index section: header,
// checksum (skippable so the fuzz target can reach the structural
// checks), record offsets, table geometry, and every referenced posting
// list — ordinals in range and strictly ascending, multiplicities within
// [1, maxKixMult], varints well formed. Anything off returns an error
// and the caller treats the segment as unindexed; accumulate can then
// trust the bytes without per-probe bounds checks.
func parseKeyIndex(section []byte, verifyCRC bool) (*keyIndex, error) {
	if len(section) < kixHeaderBytes {
		return nil, fmt.Errorf("store: key index section too short (%d bytes)", len(section))
	}
	if string(section[:4]) != kixMagic {
		return nil, fmt.Errorf("store: bad key index magic %q", section[:4])
	}
	if section[4] != kixVersion {
		return nil, fmt.Errorf("store: unsupported key index version %d", section[4])
	}
	// Version 1 defines no flags; an unknown flag (or scribbled pad)
	// could change future semantics, so fail closed on any of them.
	if section[5] != 0 || section[6] != 0 || section[7] != 0 {
		return nil, fmt.Errorf("store: unsupported key index flags %x", section[5:8])
	}
	payloadLen := binio.U32At(section, 8)
	if uint64(payloadLen) != uint64(len(section)-kixHeaderBytes) {
		return nil, fmt.Errorf("store: key index payload length %d != %d", payloadLen, len(section)-kixHeaderBytes)
	}
	payload := section[kixHeaderBytes:]
	if verifyCRC {
		if got, want := crc32.Checksum(payload, crcTable), binio.U32At(section, 12); got != want {
			return nil, fmt.Errorf("store: key index fails CRC (%08x != %08x)", got, want)
		}
	}

	pos := 0
	recCount, n := binio.UvarintAt(payload, pos)
	if n <= 0 || recCount > uint64(len(payload)) {
		return nil, fmt.Errorf("store: implausible key index record count %d", recCount)
	}
	pos += n
	ix := &keyIndex{recOffsets: make([]int64, 0, recCount)}
	prev := int64(0)
	for i := uint64(0); i < recCount; i++ {
		d, n := binio.UvarintAt(payload, pos)
		if n <= 0 || d > math.MaxInt64 {
			return nil, fmt.Errorf("store: key index record offset %d malformed", i)
		}
		pos += n
		off := prev + int64(d)
		if off <= prev && i > 0 || off <= 0 {
			return nil, fmt.Errorf("store: key index record offsets not ascending at %d", i)
		}
		prev = off
		ix.recOffsets = append(ix.recOffsets, off)
	}
	dupLen := (int(recCount) + 7) / 8
	if len(payload)-pos < dupLen+4 {
		return nil, fmt.Errorf("store: key index truncated in dup bitmap")
	}
	ix.dup = payload[pos : pos+dupLen]
	pos += dupLen
	slots := binio.U32At(payload, pos)
	pos += 4
	if slots != 0 && (slots&(slots-1) != 0 || uint64(slots) > uint64(len(payload)-pos)/8) {
		return nil, fmt.Errorf("store: implausible key index slot count %d", slots)
	}
	ix.slots = int(slots)
	ix.mask = slots - 1
	ix.keys = payload[pos : pos+4*ix.slots]
	pos += 4 * ix.slots
	ix.refs = payload[pos : pos+4*ix.slots]
	pos += 4 * ix.slots
	ix.postings = payload[pos:]

	for s := 0; s < ix.slots; s++ {
		ref := binio.U32At(ix.refs, s*4)
		if ref == 0 {
			continue
		}
		if err := validatePostings(ix.postings, int(ref)-1, recCount); err != nil {
			return nil, fmt.Errorf("store: key index slot %d: %w", s, err)
		}
	}
	return ix, nil
}

// validatePostings structurally checks one posting list.
func validatePostings(blob []byte, off int, recCount uint64) error {
	n, sz := binio.UvarintAt(blob, off)
	if sz <= 0 || n == 0 || n > recCount {
		return fmt.Errorf("bad posting count %d", n)
	}
	off += sz
	var ord uint64
	for j := uint64(0); j < n; j++ {
		d, sz := binio.UvarintAt(blob, off)
		if sz <= 0 {
			return fmt.Errorf("posting %d truncated", j)
		}
		off += sz
		if j == 0 {
			ord = d
		} else {
			if d == 0 {
				return fmt.Errorf("posting %d ordinal not ascending", j)
			}
			ord += d
		}
		if ord >= recCount {
			return fmt.Errorf("posting %d ordinal %d out of range", j, ord)
		}
		m, sz := binio.UvarintAt(blob, off)
		if sz <= 0 || m == 0 || m > maxKixMult {
			return fmt.Errorf("posting %d multiplicity %d out of range", j, m)
		}
		off += sz
	}
	return nil
}
