package synth

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"misketch/internal/mi"
	"misketch/internal/stats"
	"misketch/internal/table"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestChooseTrinomialParamsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := ChooseTrinomialParams(rng)
		if p.P1 < 0.15 || p.P1 > 0.85 || p.P2 < 0.15 || p.P2 > 0.85 {
			t.Fatalf("parameters out of range: %+v", p)
		}
		if p.P1+p.P2 >= 1 {
			t.Fatalf("p1+p2 = %v >= 1", p.P1+p.P2)
		}
		if p.TargetMI < 0 || p.TargetMI > 3.5 {
			t.Fatalf("target MI out of range: %v", p.TargetMI)
		}
		// The solved p2 must reproduce the target correlation.
		r := stats.CorrelationForMI(p.TargetMI)
		if !approxEq(math.Abs(stats.TrinomialCorrelation(p.P1, p.P2)), r, 1e-9) {
			t.Fatalf("correlation mismatch for %+v", p)
		}
	}
}

func TestTrinomialProxyTracksExactMI(t *testing.T) {
	// For large m the exact trinomial MI should approach the
	// bivariate-normal proxy used to choose parameters (CLT).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		p := ChooseTrinomialParams(rng)
		exact := stats.TrinomialMI(512, p.P1, p.P2)
		if math.Abs(exact-p.TargetMI) > 0.15+0.1*p.TargetMI {
			t.Errorf("m=512 exact MI %v far from target %v (p=%+v)", exact, p.TargetMI, p)
		}
	}
}

func TestGenTrinomialMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, n = 64, 20000
	const p1, p2 = 0.3, 0.4
	d := GenTrinomialWithParams(m, n, p1, p2, rng)
	if len(d.X) != n || len(d.Y) != n {
		t.Fatal("wrong sample count")
	}
	// Marginal means: E[X] = m·p1, E[Y] = m·p2.
	if !approxEq(stats.Mean(d.X), m*p1, 0.5) {
		t.Errorf("mean X = %v, want %v", stats.Mean(d.X), m*p1)
	}
	if !approxEq(stats.Mean(d.Y), m*p2, 0.5) {
		t.Errorf("mean Y = %v, want %v", stats.Mean(d.Y), m*p2)
	}
	// Marginal variances: m·p(1−p).
	if !approxEq(stats.Variance(d.X), m*p1*(1-p1), 1.5) {
		t.Errorf("var X = %v, want %v", stats.Variance(d.X), m*p1*(1-p1))
	}
	// Correlation matches the trinomial closed form.
	wantR := stats.TrinomialCorrelation(p1, p2)
	if gotR := stats.Pearson(d.X, d.Y); !approxEq(gotR, wantR, 0.03) {
		t.Errorf("corr = %v, want %v", gotR, wantR)
	}
	// Support check: X + Y <= m, values nonnegative.
	for i := range d.X {
		if d.X[i] < 0 || d.Y[i] < 0 || d.X[i]+d.Y[i] > m {
			t.Fatalf("support violated at %d: x=%v y=%v", i, d.X[i], d.Y[i])
		}
	}
}

func TestGenTrinomialEmpiricalMIMatchesExact(t *testing.T) {
	// The MLE estimate on a large sample must match the analytic MI —
	// this is the Section V-B1 sanity check in miniature.
	rng := rand.New(rand.NewSource(4))
	d := GenTrinomialWithParams(16, 30000, 0.45, 0.45, rng)
	xs := make([]string, len(d.X))
	ys := make([]string, len(d.Y))
	for i := range xs {
		xs[i] = fmt.Sprintf("%d", int(d.X[i]))
		ys[i] = fmt.Sprintf("%d", int(d.Y[i]))
	}
	got := mi.MLE(xs, ys)
	if !approxEq(got, d.TrueMI, 0.03) {
		t.Errorf("empirical MI %v vs exact %v", got, d.TrueMI)
	}
}

func TestGenCDUnif(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, n = 10, 20000
	d := GenCDUnif(m, n, rng)
	if !approxEq(d.TrueMI, stats.CDUnifMI(m), 1e-12) {
		t.Error("TrueMI mismatch")
	}
	if d.XDiscrete != true || d.YDiscrete != false {
		t.Error("type flags wrong")
	}
	for i := range d.X {
		x := d.X[i]
		if x != math.Trunc(x) || x < 0 || x >= m {
			t.Fatalf("X out of support: %v", x)
		}
		if d.Y[i] < x || d.Y[i] > x+2 {
			t.Fatalf("Y out of conditional support: x=%v y=%v", x, d.Y[i])
		}
	}
	// Empirical MI via MixedKSG should approach the closed form.
	got := mi.MixedKSG(d.X[:5000], d.Y[:5000], 3)
	if !approxEq(got, d.TrueMI, 0.1) {
		t.Errorf("empirical MI %v vs exact %v", got, d.TrueMI)
	}
}

func TestBinomialSamplerDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := newBinomialSampler(20, 0.25)
	const n = 50000
	counts := make([]int, 21)
	for i := 0; i < n; i++ {
		counts[b.sample(rng)]++
	}
	for k := 0; k <= 20; k++ {
		want := float64(n) * pmfExp(20, k, 0.25)
		if want < 50 {
			continue // skip tail bins with tiny expectation
		}
		if math.Abs(float64(counts[k])-want) > 5*math.Sqrt(want) {
			t.Errorf("bin %d: got %d, want about %.0f", k, counts[k], want)
		}
	}
}

func TestTablesKeyIndRecoversJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := GenTrinomialWithParams(16, 500, 0.3, 0.4, rng)
	for _, tr := range []Treatment{TreatDiscrete, TreatMixture, TreatDC} {
		train, cand, err := d.Tables(KeyInd, tr, rng)
		if err != nil {
			t.Fatal(err)
		}
		if train.NumRows() != 500 || cand.NumRows() != 500 {
			t.Fatalf("%v: row counts %d/%d", tr, train.NumRows(), cand.NumRows())
		}
		joined, err := table.AugmentationJoin(train, "k", cand, "k", "x", table.AggFirst)
		if err != nil {
			t.Fatal(err)
		}
		if joined.NumRows() != 500 {
			t.Fatalf("%v: join rows = %d", tr, joined.NumRows())
		}
		// The joined x must reproduce d.X row-for-row (up to typing).
		xc := joined.MustColumn("x")
		for i := 0; i < 500; i++ {
			want := d.X[i]
			var got float64
			if xc.Kind == table.KindString {
				fmt.Sscanf(xc.Str[i], "%f", &got)
			} else {
				got = xc.Num[i]
			}
			if math.Abs(got-want) > 1e-3 {
				t.Fatalf("%v: row %d x=%v want %v", tr, i, got, want)
			}
		}
	}
}

func TestTablesKeyDepManyToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := GenTrinomialWithParams(16, 1000, 0.3, 0.4, rng)
	train, cand, err := d.Tables(KeyDep, TreatDiscrete, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate has one row per distinct X value.
	distinct := map[float64]bool{}
	for _, x := range d.X {
		distinct[x] = true
	}
	if cand.NumRows() != len(distinct) {
		t.Fatalf("cand rows = %d, want %d distinct", cand.NumRows(), len(distinct))
	}
	// Join recovers the pairs exactly.
	joined, err := table.AugmentationJoin(train, "k", cand, "k", "x", table.AggFirst)
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 1000 {
		t.Fatalf("join rows = %d", joined.NumRows())
	}
	xs := joined.MustColumn("x").Str
	ys := joined.MustColumn("y").Str
	for i := 0; i < 1000; i++ {
		if xs[i] != fmt.Sprintf("%d", int(d.X[i])) {
			t.Fatalf("row %d x=%q want %d", i, xs[i], int(d.X[i]))
		}
		if ys[i] != fmt.Sprintf("%d", int(d.Y[i])) {
			t.Fatalf("row %d y=%q want %d", i, ys[i], int(d.Y[i]))
		}
	}
}

func TestTablesTypesPerTreatment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := GenTrinomialWithParams(16, 100, 0.3, 0.4, rng)
	cases := []struct {
		tr    Treatment
		yKind table.Kind
		xKind table.Kind
	}{
		{TreatDiscrete, table.KindString, table.KindString},
		{TreatMixture, table.KindFloat, table.KindFloat},
		{TreatDC, table.KindFloat, table.KindString},
	}
	for _, c := range cases {
		train, cand, err := d.Tables(KeyInd, c.tr, rng)
		if err != nil {
			t.Fatal(err)
		}
		if train.MustColumn("y").Kind != c.yKind {
			t.Errorf("%v: y kind = %v", c.tr, train.MustColumn("y").Kind)
		}
		if cand.MustColumn("x").Kind != c.xKind {
			t.Errorf("%v: x kind = %v", c.tr, cand.MustColumn("x").Kind)
		}
	}
}

func TestTreatDCPerturbsDiscreteY(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := GenTrinomialWithParams(16, 2000, 0.3, 0.4, rng)
	train, _, err := d.Tables(KeyInd, TreatDC, rng)
	if err != nil {
		t.Fatal(err)
	}
	y := train.MustColumn("y").Num
	seen := map[float64]bool{}
	for _, v := range y {
		if seen[v] {
			t.Fatal("perturbed Y has ties")
		}
		seen[v] = true
	}
	// CDUnif's Y is already continuous: no perturbation applied.
	d2 := GenCDUnif(5, 100, rng)
	train2, _, err := d2.Tables(KeyInd, TreatDC, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range train2.MustColumn("y").Num {
		if v != d2.Y[i] {
			t.Fatal("continuous Y should pass through unperturbed")
		}
	}
}

func TestTablesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cont := &Dataset{X: []float64{0.5}, Y: []float64{1}, XDiscrete: false, YDiscrete: false}
	if _, _, err := cont.Tables(KeyDep, TreatMixture, rng); err == nil {
		t.Error("KeyDep with continuous X should error")
	}
	cd := GenCDUnif(4, 10, rng)
	if _, _, err := cd.Tables(KeyInd, TreatDiscrete, rng); err == nil {
		t.Error("discrete treatment with continuous Y should error")
	}
}

func TestKeyGenAndTreatmentStrings(t *testing.T) {
	if KeyInd.String() != "KeyInd" || KeyDep.String() != "KeyDep" {
		t.Error("KeyGen strings")
	}
	if TreatDiscrete.String() != "MLE" || TreatMixture.String() != "Mixed-KSG" || TreatDC.String() != "DC-KSG" {
		t.Error("Treatment strings")
	}
	if TreatDiscrete.Estimator() != mi.EstMLE || TreatDC.Estimator() != mi.EstDCKSG {
		t.Error("Treatment estimators")
	}
}
