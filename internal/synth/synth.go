// Package synth implements the paper's synthetic benchmark (Section V-A):
// generators that draw a post-join column pair (X, Y) from analytic
// distributions with known mutual information, and decomposition of that
// pair into a joinable (train, candidate) table pair under two contrasting
// key-generation processes:
//
//   - KeyInd: unique sequential join keys, a one-to-one relationship with
//     maximum independence between keys and values.
//   - KeyDep: the join key equals the X value, a many-to-one relationship
//     with maximal key–feature dependence (only applicable to discrete X).
//
// Two distributions are provided, matching the paper:
//
//   - Trinomial: (X, Y) are the first two counts of Multinomial(m,
//     ⟨p1,p2⟩). Parameters are chosen via the bivariate-normal
//     approximation to hit a target MI; the reported true MI is computed
//     exactly from the open-form trinomial entropy.
//   - CDUnif: X ~ Unif{0..m−1}, Y | X ~ Unif[X, X+2], with closed-form
//     MI = ln m − (m−1)·ln 2/m.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"misketch/internal/mi"
	"misketch/internal/stats"
	"misketch/internal/table"
)

// Dataset is a generated post-join sample with its analytically known MI.
type Dataset struct {
	// Name describes the generator and parameters.
	Name string
	// TrueMI is the exact mutual information of the generating
	// distribution, in nats.
	TrueMI float64
	// X and Y are the post-join feature and target samples. Discrete
	// variables hold integer-valued floats.
	X, Y []float64
	// XDiscrete/YDiscrete record which marginals are discrete.
	XDiscrete, YDiscrete bool
	// M is the distinct-value parameter of the generator.
	M int
	// P1, P2 are the trinomial cell probabilities (zero for CDUnif).
	P1, P2 float64
}

// TrinomialParams holds generator parameters chosen for a target MI.
type TrinomialParams struct {
	P1, P2 float64
	// TargetMI is the MI requested via the bivariate-normal proxy.
	TargetMI float64
}

// ChooseTrinomialParams draws distribution parameters using the paper's
// algorithm: target MI ~ Unif(0, 3.5), equivalent correlation
// r = sqrt(1 − exp(−2·MI)), p1 ~ Unif(0.15, 0.85), and p2 solved from the
// trinomial correlation formula, retrying until p2 ∈ [0.15, 0.85].
func ChooseTrinomialParams(rng *rand.Rand) TrinomialParams {
	for {
		target := rng.Float64() * 3.5
		r := stats.CorrelationForMI(target)
		p1 := 0.15 + 0.7*rng.Float64()
		p2 := stats.SolveTrinomialP2(p1, r)
		if p2 < 0.15 || p2 > 0.85 || p1+p2 >= 0.999 {
			continue
		}
		return TrinomialParams{P1: p1, P2: p2, TargetMI: target}
	}
}

// GenTrinomial draws n post-join samples from Trinomial(m, ⟨p1,p2⟩) with
// parameters chosen by ChooseTrinomialParams, and computes the exact MI.
func GenTrinomial(m, n int, rng *rand.Rand) *Dataset {
	p := ChooseTrinomialParams(rng)
	return GenTrinomialWithParams(m, n, p.P1, p.P2, rng)
}

// GenTrinomialWithParams draws n samples of the first two counts of
// Multinomial(m, ⟨p1,p2⟩) using the binomial decomposition
// X ~ Bin(m, p1), Y | X ~ Bin(m−X, p2/(1−p1)).
func GenTrinomialWithParams(m, n int, p1, p2 float64, rng *rand.Rand) *Dataset {
	d := &Dataset{
		Name:      fmt.Sprintf("Trinomial(m=%d)", m),
		TrueMI:    stats.TrinomialMI(m, p1, p2),
		X:         make([]float64, n),
		Y:         make([]float64, n),
		XDiscrete: true,
		YDiscrete: true,
		M:         m,
		P1:        p1,
		P2:        p2,
	}
	bx := newBinomialSampler(m, p1)
	q := p2 / (1 - p1)
	// Y | X=x needs Binomial(m−x, q); cache samplers per remaining count.
	cache := map[int]*binomialSampler{}
	for i := 0; i < n; i++ {
		x := bx.sample(rng)
		by, ok := cache[m-x]
		if !ok {
			by = newBinomialSampler(m-x, q)
			cache[m-x] = by
		}
		d.X[i] = float64(x)
		d.Y[i] = float64(by.sample(rng))
	}
	return d
}

// GenCDUnif draws n samples of the paper's CDUnif distribution with
// parameter m: X ~ Unif{0..m−1}, Y | X ~ Unif[X, X+2].
func GenCDUnif(m, n int, rng *rand.Rand) *Dataset {
	d := &Dataset{
		Name:      fmt.Sprintf("CDUnif(m=%d)", m),
		TrueMI:    stats.CDUnifMI(m),
		X:         make([]float64, n),
		Y:         make([]float64, n),
		XDiscrete: true,
		YDiscrete: false,
		M:         m,
	}
	for i := 0; i < n; i++ {
		x := rng.Intn(m)
		d.X[i] = float64(x)
		d.Y[i] = float64(x) + 2*rng.Float64()
	}
	return d
}

// binomialSampler samples Binomial(n, p) by inverse-CDF lookup.
type binomialSampler struct {
	cdf []float64
}

func newBinomialSampler(n int, p float64) *binomialSampler {
	cdf := make([]float64, n+1)
	acc := 0.0
	for k := 0; k <= n; k++ {
		acc += pmfExp(n, k, p)
		cdf[k] = acc
	}
	cdf[n] = 1 // absorb floating-point shortfall
	return &binomialSampler{cdf: cdf}
}

func pmfExp(n, k int, p float64) float64 {
	lp := stats.BinomialPMFLog(n, k, p)
	if lp < -745 { // exp underflows
		return 0
	}
	return math.Exp(lp)
}

func (b *binomialSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(b.cdf, u)
}

// KeyGen selects the key-generation process used to decompose a dataset
// into joinable tables.
type KeyGen int

const (
	// KeyInd gives every row a unique sequential key (one-to-one join).
	KeyInd KeyGen = iota
	// KeyDep sets the key equal to the X value (many-to-one join),
	// simulating strong key–feature dependence.
	KeyDep
)

// String returns "KeyInd" or "KeyDep".
func (k KeyGen) String() string {
	if k == KeyInd {
		return "KeyInd"
	}
	return "KeyDep"
}

// Treatment selects how the generated integer-valued data is typed, which
// in turn selects the MI estimator (Section V-A "Distribution
// Parameters"): discrete–discrete (MLE), mixture–mixture (MixedKSG), or
// discrete–continuous (DC-KSG, with the Y marginal perturbed by
// low-magnitude Gaussian noise when it is discrete).
type Treatment int

const (
	// TreatDiscrete types both columns as strings → MLE.
	TreatDiscrete Treatment = iota
	// TreatMixture types both columns as floats → MixedKSG.
	TreatMixture
	// TreatDC types X as string and Y as (perturbed) float → DC-KSG.
	TreatDC
)

// String names the treatment after its estimator.
func (t Treatment) String() string {
	switch t {
	case TreatDiscrete:
		return "MLE"
	case TreatMixture:
		return "Mixed-KSG"
	default:
		return "DC-KSG"
	}
}

// Estimator returns the mi estimator the treatment induces.
func (t Treatment) Estimator() mi.Estimator {
	switch t {
	case TreatDiscrete:
		return mi.EstMLE
	case TreatMixture:
		return mi.EstMixedKSG
	default:
		return mi.EstDCKSG
	}
}

// perturbSigma is the noise magnitude used to break ties when a discrete
// marginal must be treated as continuous. It is far below the unit grid
// spacing of the generated integer data, so the underlying MI is
// unchanged.
const perturbSigma = 1e-6

// Tables decomposes the dataset into a (train, candidate) pair joinable on
// column "k", with value columns typed per the treatment: the train table
// carries target column "y" and the candidate table feature column "x".
// Joining them (many-to-one, on k) recovers exactly the generated (X, Y)
// pairs.
func (d *Dataset) Tables(kg KeyGen, tr Treatment, rng *rand.Rand) (train, cand *table.Table, err error) {
	n := len(d.X)
	if kg == KeyDep && !d.XDiscrete {
		return nil, nil, fmt.Errorf("synth: KeyDep requires a discrete X")
	}
	if tr == TreatDiscrete && !(d.XDiscrete && d.YDiscrete) {
		return nil, nil, fmt.Errorf("synth: the discrete treatment requires discrete X and Y")
	}

	keys := make([]string, n)
	switch kg {
	case KeyInd:
		for i := range keys {
			keys[i] = fmt.Sprintf("r%d", i)
		}
	case KeyDep:
		for i := range keys {
			keys[i] = fmt.Sprintf("v%d", int(d.X[i]))
		}
	}

	// Candidate side: one row per key (KeyDep dedupes X values; KeyInd
	// keeps all rows since keys are unique).
	candKeys := keys
	candX := d.X
	if kg == KeyDep {
		seen := map[string]bool{}
		candKeys = candKeys[:0:0]
		candX = candX[:0:0]
		for i, k := range keys {
			if !seen[k] {
				seen[k] = true
				candKeys = append(candKeys, k)
				candX = append(candX, d.X[i])
			}
		}
	}

	yCol := d.typedColumn("y", d.Y, d.YDiscrete, tr == TreatDiscrete, tr == TreatDC, rng)
	xCol := d.typedColumn("x", candX, d.XDiscrete, tr != TreatMixture, false, rng)
	train = table.New(table.NewStringColumn("k", keys), yCol)
	cand = table.New(table.NewStringColumn("k", append([]string(nil), candKeys...)), xCol)
	return train, cand, nil
}

// typedColumn renders vals as a string column (asString) or a float
// column, optionally perturbing discrete values into a continuous marginal.
func (d *Dataset) typedColumn(name string, vals []float64, discrete, asString, perturb bool, rng *rand.Rand) *table.Column {
	if asString && discrete {
		strs := make([]string, len(vals))
		for i, v := range vals {
			strs[i] = fmt.Sprintf("%d", int(v))
		}
		return table.NewStringColumn(name, strs)
	}
	out := append([]float64(nil), vals...)
	if perturb && discrete {
		out = mi.Perturb(out, perturbSigma, rng)
	}
	return table.NewFloatColumn(name, out)
}
