package sample

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"misketch/internal/hash"
)

func TestReservoirKeepsAllWhenUnderCapacity(t *testing.T) {
	r := NewReservoir[int](10, rand.New(rand.NewSource(1)))
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 5 || r.Seen() != 5 {
		t.Fatalf("items=%d seen=%d", len(r.Items()), r.Seen())
	}
}

func TestReservoirCapacity(t *testing.T) {
	r := NewReservoir[int](10, rand.New(rand.NewSource(1)))
	for i := 0; i < 1000; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 10 {
		t.Fatalf("len = %d, want 10", len(r.Items()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of n=20 items should appear in a k=5 reservoir with probability
	// k/n = 0.25. Run many trials and check the empirical inclusion rates.
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(42))
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir[int](k, rng)
		for i := 0; i < n; i++ {
			r.Add(i)
		}
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Errorf("item %d included %d times, want about %.0f", i, c, want)
		}
	}
}

func TestReservoirPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReservoir[int](0, rand.New(rand.NewSource(1)))
}

func TestKMVSelectsMinimumHashes(t *testing.T) {
	s := NewKMV[int](3)
	us := []float64{0.9, 0.1, 0.5, 0.3, 0.7, 0.2}
	for i, u := range us {
		s.Offer(u, i)
	}
	items := s.Items()
	// Minimum hashes are 0.1 (idx 1), 0.2 (idx 5), 0.3 (idx 3).
	want := []int{1, 5, 3}
	if len(items) != 3 {
		t.Fatalf("len = %d", len(items))
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items() = %v, want %v (ascending hash order)", items, want)
		}
	}
	if s.Threshold() != 0.3 {
		t.Errorf("Threshold = %v, want 0.3", s.Threshold())
	}
}

func TestKMVOrderInvariance(t *testing.T) {
	// The same universe offered in any order yields the same selection —
	// the coordination property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		type kv struct {
			u float64
			v int
		}
		var univ []kv
		for i := 0; i < n; i++ {
			univ = append(univ, kv{hash.Unit(uint64(i) * 2654435761), i})
		}
		s1 := NewKMV[int](8)
		for _, e := range univ {
			s1.Offer(e.u, e.v)
		}
		rng.Shuffle(len(univ), func(i, j int) { univ[i], univ[j] = univ[j], univ[i] })
		s2 := NewKMV[int](8)
		for _, e := range univ {
			s2.Offer(e.u, e.v)
		}
		a, b := s1.Items(), s2.Items()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKMVUnderCapacity(t *testing.T) {
	s := NewKMV[string](10)
	s.Offer(0.5, "a")
	s.Offer(0.2, "b")
	if s.Len() != 2 || s.Threshold() != 1 {
		t.Errorf("len=%d threshold=%v", s.Len(), s.Threshold())
	}
	items := s.Items()
	if items[0] != "b" || items[1] != "a" {
		t.Errorf("Items = %v", items)
	}
}

func TestPrioritySelectsHeavyItems(t *testing.T) {
	// With one item 1000x heavier than the rest, it should essentially
	// always be selected.
	missing := 0
	for trial := 0; trial < 200; trial++ {
		s := NewPriority[int](5)
		rng := rand.New(rand.NewSource(int64(trial)))
		for i := 0; i < 50; i++ {
			w := 1.0
			if i == 7 {
				w = 1000
			}
			s.Offer(w, rng.Float64(), i)
		}
		found := false
		for _, it := range s.Items() {
			if it == 7 {
				found = true
			}
		}
		if !found {
			missing++
		}
	}
	if missing > 2 {
		t.Errorf("heavy item missed in %d/200 trials", missing)
	}
}

func TestPriorityCapacityAndZeroHash(t *testing.T) {
	s := NewPriority[int](2)
	s.Offer(1, 0, 1) // u=0 must not divide by zero
	s.Offer(1, 0.5, 2)
	s.Offer(1, 0.9, 3)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	// u=0 gives (effectively) infinite priority; item 1 must be retained.
	found := false
	for _, it := range s.Items() {
		if it == 1 {
			found = true
		}
	}
	if !found {
		t.Error("u=0 item should have maximal priority")
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := len(Bernoulli(100000, 0.3, rng))
	if math.Abs(float64(got)-30000) > 1000 {
		t.Errorf("Bernoulli kept %d of 100000 at p=0.3", got)
	}
	if len(Bernoulli(1000, 0, rng)) != 0 {
		t.Error("p=0 should select nothing")
	}
	if len(Bernoulli(1000, 1.1, rng)) != 1000 {
		t.Error("p>=1 should select everything")
	}
}

func TestWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	idx := WithoutReplacement(100, 30, rng)
	if len(idx) != 30 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index out of range: %d", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// k >= n returns everything.
	all := WithoutReplacement(10, 99, rng)
	sort.Ints(all)
	for i := range all {
		if all[i] != i {
			t.Fatalf("expected permutation of 0..9, got %v", all)
		}
	}
}

func TestWithoutReplacementUniform(t *testing.T) {
	// Each index should be selected with probability k/n.
	const n, k, trials = 10, 3, 30000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for tr := 0; tr < trials; tr++ {
		for _, i := range WithoutReplacement(n, k, rng) {
			counts[i]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("index %d drawn %d times, want about %.0f", i, c, want)
		}
	}
}
