// Package sample implements the sampling primitives the sketches are built
// from: reservoir sampling (Vitter's Algorithm R), k-minimum-values (KMV)
// selection over hashed keys, priority sampling (Duffield–Lund–Thorup),
// Bernoulli sampling, and without-replacement draws.
//
// Sketch-level semantics (coordination, per-key caps, aggregation) live in
// internal/core; this package only provides the mechanics.
package sample

import (
	"container/heap"
	"math/rand"
)

// Reservoir maintains a uniform without-replacement sample of up to k items
// from a stream (Vitter's Algorithm R). The zero value is not usable; use
// NewReservoir.
type Reservoir[T any] struct {
	k     int
	seen  int
	items []T
	rng   *rand.Rand
}

// NewReservoir returns a reservoir of capacity k driven by rng.
func NewReservoir[T any](k int, rng *rand.Rand) *Reservoir[T] {
	if k <= 0 {
		panic("sample: reservoir capacity must be positive")
	}
	return &Reservoir[T]{k: k, rng: rng}
}

// Add offers one stream item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	j := r.rng.Intn(r.seen)
	if j < r.k {
		r.items[j] = item
	}
}

// Items returns the current sample (order is arbitrary). The returned
// slice aliases internal storage.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns how many items have been offered.
func (r *Reservoir[T]) Seen() int { return r.seen }

// kmvEntry pairs an item with its hash position used for ordering.
type kmvEntry[T any] struct {
	u    float64
	item T
}

// kmvHeap is a max-heap on u so the largest retained hash is evictable.
type kmvHeap[T any] []kmvEntry[T]

func (h kmvHeap[T]) Len() int            { return len(h) }
func (h kmvHeap[T]) Less(i, j int) bool  { return h[i].u > h[j].u }
func (h kmvHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *kmvHeap[T]) Push(x interface{}) { *h = append(*h, x.(kmvEntry[T])) }
func (h *kmvHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KMV retains the k items with the minimum hash values from a stream.
// Feeding the same (item, hash) universe in any order yields the same
// selection, which is what makes hash-based sampling coordinated across
// tables. Duplicate hash values are retained up to capacity.
type KMV[T any] struct {
	k int
	h kmvHeap[T]
}

// NewKMV returns a KMV selector of capacity k.
func NewKMV[T any](k int) *KMV[T] {
	if k <= 0 {
		panic("sample: KMV capacity must be positive")
	}
	return &KMV[T]{k: k}
}

// Offer considers an item whose hash position is u ∈ [0,1).
func (s *KMV[T]) Offer(u float64, item T) {
	if len(s.h) < s.k {
		heap.Push(&s.h, kmvEntry[T]{u, item})
		return
	}
	if u >= s.h[0].u {
		return
	}
	s.h[0] = kmvEntry[T]{u, item}
	heap.Fix(&s.h, 0)
}

// Threshold returns the largest retained hash value (the eviction
// boundary), or 1 if the selector is not yet full.
func (s *KMV[T]) Threshold() float64 {
	if len(s.h) < s.k {
		return 1
	}
	return s.h[0].u
}

// Items returns the retained items ordered by ascending hash value.
func (s *KMV[T]) Items() []T {
	out := make([]T, len(s.h))
	entries := append(kmvHeap[T](nil), s.h...)
	// Heap-sort descending, fill from the back.
	for i := len(entries) - 1; i >= 0; i-- {
		out[i] = entries[0].item
		entries[0] = entries[len(entries)-1]
		entries = entries[:len(entries)-1]
		siftDownKMV(entries, 0)
	}
	return out
}

func siftDownKMV[T any](h kmvHeap[T], i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l].u > h[largest].u {
			largest = l
		}
		if r < len(h) && h[r].u > h[largest].u {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// Len returns the number of retained items.
func (s *KMV[T]) Len() int { return len(s.h) }

// Priority selects k items by priority sampling (Duffield, Lund, Thorup):
// item i with weight w_i and uniform hash u_i gets priority q_i = w_i/u_i,
// and the k largest priorities win. Heavy items are selected with high
// probability while the hash keeps selection coordinated.
type Priority[T any] struct {
	k int
	h prioHeap[T]
}

type prioEntry[T any] struct {
	q    float64
	item T
}

// prioHeap is a min-heap on q so the smallest retained priority is evictable.
type prioHeap[T any] []prioEntry[T]

func (h prioHeap[T]) Len() int            { return len(h) }
func (h prioHeap[T]) Less(i, j int) bool  { return h[i].q < h[j].q }
func (h prioHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap[T]) Push(x interface{}) { *h = append(*h, x.(prioEntry[T])) }
func (h *prioHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewPriority returns a priority sampler of capacity k.
func NewPriority[T any](k int) *Priority[T] {
	if k <= 0 {
		panic("sample: priority capacity must be positive")
	}
	return &Priority[T]{k: k}
}

// Offer considers an item with weight w > 0 and uniform hash u ∈ (0,1).
func (s *Priority[T]) Offer(w, u float64, item T) {
	if u <= 0 {
		u = 1e-18 // avoid division by zero from a pathological hash
	}
	q := w / u
	if len(s.h) < s.k {
		heap.Push(&s.h, prioEntry[T]{q, item})
		return
	}
	if q <= s.h[0].q {
		return
	}
	s.h[0] = prioEntry[T]{q, item}
	heap.Fix(&s.h, 0)
}

// Items returns the retained items (arbitrary order).
func (s *Priority[T]) Items() []T {
	out := make([]T, len(s.h))
	for i, e := range s.h {
		out[i] = e.item
	}
	return out
}

// Len returns the number of retained items.
func (s *Priority[T]) Len() int { return len(s.h) }

// Bernoulli returns the indices of a Bernoulli(p) sample of n items.
func Bernoulli(n int, p float64, rng *rand.Rand) []int {
	var out []int
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			out = append(out, i)
		}
	}
	return out
}

// WithoutReplacement returns k distinct indices drawn uniformly from
// {0..n−1} via a partial Fisher–Yates shuffle. If k ≥ n it returns all n
// indices (shuffled).
func WithoutReplacement(n, k int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
