package misketch

// e2e_test.go drives the whole stack the way a deployment would: a
// synthetic corpus is ingested into an on-disk store through the HTTP
// service (CSV → /v1/sketch → /v1/put), a discovery query is answered
// over /v1/rank, and the response is asserted bit-for-bit against a
// direct Store.RankQuery call on the same store — the service layer must
// add transport, caching, and admission control without perturbing a
// single bit of the ranking.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// e2eCSV synthesizes a CSV over 80 join keys whose value column depends
// on the key with the given strength (0 = pure noise).
func e2eCSV(rng *rand.Rand, rows int, strength float64) string {
	var b strings.Builder
	b.WriteString("key,val\n")
	for i := 0; i < rows; i++ {
		g := rng.Intn(80)
		fmt.Fprintf(&b, "k%d,%g\n", g, strength*float64(g%6)+rng.NormFloat64())
	}
	return b.String()
}

func TestE2EServiceMatchesDirectRanking(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ServerOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Ingest a 25-table corpus entirely through the API.
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 25; i++ {
		csv := e2eCSV(rng, 200, float64(i%5))
		resp, err := http.Post(ts.URL+"/v1/sketch?key=key&value=val&role=candidate&size=128", "text/csv", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sketch %d: status %d: %s", i, resp.StatusCode, raw)
		}
		var sr SketchReply
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		skBytes, err := base64.StdEncoding.DecodeString(sr.Sketch)
		if err != nil {
			t.Fatal(err)
		}
		putURL := fmt.Sprintf("%s/v1/put?name=e2e/t%02d%%23val", ts.URL, i)
		presp, err := http.Post(putURL, "application/octet-stream", bytes.NewReader(skBytes))
		if err != nil {
			t.Fatal(err)
		}
		praw, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("put %d: status %d: %s", i, presp.StatusCode, praw)
		}
	}

	// Build the query-side train sketch through the API too.
	trainCSV := e2eCSV(rng, 1200, 3)
	resp, err := http.Post(ts.URL+"/v1/sketch?key=key&value=val&role=train&size=128", "text/csv", strings.NewReader(trainCSV))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train sketch: status %d: %s", resp.StatusCode, raw)
	}
	var trainReply SketchReply
	if err := json.Unmarshal(raw, &trainReply); err != nil {
		t.Fatal(err)
	}

	// Rank over HTTP (top-10), twice: the repeat must hit the probe cache.
	minJoin := 10
	rank := func() RankResponse {
		t.Helper()
		body, _ := json.Marshal(RankRequest{
			Sketch: trainReply.Sketch, Prefix: "e2e/", MinJoin: &minJoin, K: DefaultK, Top: 10,
		})
		resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rank: status %d: %s", resp.StatusCode, raw)
		}
		var rr RankResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	cold := rank()
	warm := rank()
	if cold.ProbeCached {
		t.Fatal("first query claims a cached probe")
	}
	if !warm.ProbeCached {
		t.Fatal("repeat query missed the probe cache")
	}

	// Direct path on the same store and the same sketch bytes.
	trainRaw, err := base64.StdEncoding.DecodeString(trainReply.Sketch)
	if err != nil {
		t.Fatal(err)
	}
	trainSk, err := ReadSketch(bytes.NewReader(trainRaw))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := st.RankQuery(context.Background(), trainSk, RankOptions{
		Prefix: "e2e/", MinJoinSize: 10, K: DefaultK, TopK: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("direct ranking is empty")
	}
	for _, rr := range []RankResponse{cold, warm} {
		if len(rr.Ranked) != len(want) {
			t.Fatalf("service returned %d results, direct %d", len(rr.Ranked), len(want))
		}
		for i := range want {
			got := rr.Ranked[i]
			if got.Name != want[i].Name || got.MI != want[i].MI ||
				got.Estimator != string(want[i].Estimator) || got.JoinSize != want[i].JoinSize {
				t.Fatalf("rank[%d]: service %+v != direct %+v", i, got, want[i])
			}
		}
	}

	// Batch the same query together with a second target over
	// /v1/rank/batch: each slice of the batch must be bit-for-bit the
	// corresponding direct Store.RankQuery result, and the key-overlap
	// prefilter must report its pruning.
	train2CSV := e2eCSV(rng, 900, 1)
	resp2, err := http.Post(ts.URL+"/v1/sketch?key=key&value=val&role=train&size=128", "text/csv", strings.NewReader(train2CSV))
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("train2 sketch: status %d: %s", resp2.StatusCode, raw2)
	}
	var train2Reply SketchReply
	if err := json.Unmarshal(raw2, &train2Reply); err != nil {
		t.Fatal(err)
	}
	batchBody, _ := json.Marshal(RankBatchRequest{
		Trains: []BatchTrainRef{
			{Name: "t1", Sketch: trainReply.Sketch},
			{Name: "t2", Sketch: train2Reply.Sketch},
		},
		Prefix: "e2e/", MinJoin: &minJoin, K: DefaultK, Top: 10,
	})
	bresp, err := http.Post(ts.URL+"/v1/rank/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	braw, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("rank batch: status %d: %s", bresp.StatusCode, braw)
	}
	var br RankBatchResponse
	if err := json.Unmarshal(braw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Queries) != 2 || br.Queries[0].Name != "t1" || br.Queries[1].Name != "t2" {
		t.Fatalf("batch queries: %+v", br.Queries)
	}
	if br.ProbesCached < 1 {
		t.Fatalf("batch reused %d probes; the single-rank queries above compiled t1's", br.ProbesCached)
	}
	for q, b64 := range []string{trainReply.Sketch, train2Reply.Sketch} {
		skRaw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := ReadSketch(bytes.NewReader(skRaw))
		if err != nil {
			t.Fatal(err)
		}
		direct, _, err := st.RankQuery(context.Background(), sk, RankOptions{
			Prefix: "e2e/", MinJoinSize: 10, K: DefaultK, TopK: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := br.Queries[q].Ranked
		if len(got) != len(direct) {
			t.Fatalf("batch query %d: %d results, direct %d", q, len(got), len(direct))
		}
		for i := range direct {
			if got[i].Name != direct[i].Name || got[i].MI != direct[i].MI ||
				got[i].Estimator != string(direct[i].Estimator) || got[i].JoinSize != direct[i].JoinSize {
				t.Fatalf("batch query %d rank[%d]: %+v != direct %+v", q, i, got[i], direct[i])
			}
		}
	}

	// The ingested corpus is visible through /v1/ls and the root store.
	lsResp, err := http.Get(ts.URL + "/v1/ls?prefix=e2e/")
	if err != nil {
		t.Fatal(err)
	}
	var ls struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(lsResp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	lsResp.Body.Close()
	if ls.Count != 25 {
		t.Fatalf("ls count = %d, want 25", ls.Count)
	}

	// Server stats surface both layers' counters.
	stResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(stResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if stats.Store.Sketches != 25 || stats.Store.Puts != 25 {
		t.Fatalf("store stats: %+v", stats.Store)
	}
	// Two probe hits: the warm single rank, plus t1's slice of the batch.
	if stats.Server.RankRequests != 2 || stats.Server.BatchRequests != 1 ||
		stats.Server.ProbeHits != 2 || stats.Store.RankBatches != 1 {
		t.Fatalf("server stats: %+v / %+v", stats.Server, stats.Store)
	}
}
