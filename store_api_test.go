package misketch

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestStreamBuilderAPI(t *testing.T) {
	b, err := NewStreamBuilder(RoleTrain, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b.AddNum(fmt.Sprintf("k%d", rng.Intn(300)), rng.NormFloat64())
	}
	s := b.Sketch()
	if s.Method != TUPSK || s.Size != DefaultSketchSize {
		t.Errorf("defaults not applied: %v/%d", s.Method, s.Size)
	}
	if s.Len() == 0 {
		t.Error("empty streamed sketch")
	}
}

func TestSketchPersistenceAPI(t *testing.T) {
	train, cand := syntheticPair(t, 3000, 300)
	st, _ := SketchTrain(train, "key", "y", Options{})
	sc, _ := SketchCandidate(cand, "key", "x", Options{})

	// In-memory round trip.
	var buf bytes.Buffer
	if err := WriteSketch(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != st.Len() {
		t.Error("round trip size mismatch")
	}

	// File round trip, then estimate.
	dir := t.TempDir()
	p1 := filepath.Join(dir, "train.misk")
	p2 := filepath.Join(dir, "cand.misk")
	if err := SaveSketch(p1, st); err != nil {
		t.Fatal(err)
	}
	if err := SaveSketch(p2, sc); err != nil {
		t.Fatal(err)
	}
	lst, err := LoadSketch(p1)
	if err != nil {
		t.Fatal(err)
	}
	lsc, err := LoadSketch(p2)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := EstimateMI(st, sc)
	loaded, err := EstimateMI(lst, lsc)
	if err != nil {
		t.Fatal(err)
	}
	if direct.MI != loaded.MI {
		t.Errorf("estimate changed across persistence: %v vs %v", direct.MI, loaded.MI)
	}
	if _, err := LoadSketch(filepath.Join(dir, "missing.misk")); err == nil {
		t.Error("missing file should error")
	}
}

func TestStoreAPIEndToEnd(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	train, _ := syntheticPair(t, 4000, 300)
	trainSk, _ := SketchTrain(train, "key", "y", Options{})

	// Ingest three candidates of decreasing usefulness.
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct {
		name string
		f    func(g int) float64
	}{
		{"exact#x", func(g int) float64 { return float64(g % 5) }},
		{"noisy#x", func(g int) float64 { return float64(g%5) + 4*rng.NormFloat64() }},
		{"noise#x", func(g int) float64 { return rng.NormFloat64() }},
	} {
		var b strings.Builder
		b.WriteString("key,x\n")
		for g := 0; g < 300; g++ {
			fmt.Fprintf(&b, "g%d,%g\n", g, c.f(g))
		}
		tb, _ := ReadCSV(strings.NewReader(b.String()))
		sk, err := SketchCandidate(tb, "key", "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(c.name, sk); err != nil {
			t.Fatal(err)
		}
	}
	ranked, skipped, err := st.Rank(trainSk, "", 100, DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped: %v", skipped)
	}
	if len(ranked) != 3 || ranked[0].Name != "exact#x" || ranked[2].Name != "noise#x" {
		t.Errorf("ranking wrong: %+v", ranked)
	}
}

func TestStoreOptionsAndTopKAPI(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreWithOptions(dir, OpenStoreOptions{CacheBytes: 4 << 20, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	train, _ := syntheticPair(t, 4000, 300)
	trainSk, err := SketchTrain(train, "key", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8; i++ {
		noise := float64(i)
		var b strings.Builder
		b.WriteString("key,x\n")
		for g := 0; g < 300; g++ {
			fmt.Fprintf(&b, "g%d,%g\n", g, float64(g%5)+noise*rng.NormFloat64())
		}
		tb, _ := ReadCSV(strings.NewReader(b.String()))
		sk, err := SketchCandidate(tb, "key", "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(fmt.Sprintf("cand%02d#x", i), sk); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen cold: the manifest-backed index serves the same catalog.
	cold, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := cold.Rank(trainSk, "", 100, DefaultK)
	if err != nil {
		t.Fatal(err)
	}
	top3, _, err := cold.RankContext(context.Background(), trainSk, "", 100, DefaultK, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != 3 {
		t.Fatalf("topK = %d results", len(top3))
	}
	for i := range top3 {
		if top3[i] != full[i] {
			t.Errorf("top-K[%d] = %+v, full[%d] = %+v", i, top3[i], i, full[i])
		}
	}
	if meta, ok := cold.Meta("cand00#x"); !ok || meta.Entries == 0 {
		t.Errorf("manifest metadata missing: %+v (ok=%v)", meta, ok)
	}
	if stats := cold.Stats(); stats.Sketches != 8 || stats.DiskReads == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSketchHeaderAPI(t *testing.T) {
	train, _ := syntheticPair(t, 2000, 200)
	sk, err := SketchTrain(train, "key", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	h, err := ReadSketchHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != sk.Seed || h.Entries != sk.Len() || h.Method != sk.Method {
		t.Errorf("header = %+v", h)
	}
}

func TestCompositeKeyAPI(t *testing.T) {
	tb := NewTable(
		NewStringColumn("date", []string{"d1", "d1", "d2"}),
		NewStringColumn("zip", []string{"a", "b", "a"}),
		NewFloatColumn("y", []float64{1, 2, 3}),
	)
	t2, err := WithCompositeKey(tb, "_key", []string{"date", "zip"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SketchTrain(t2, "_key", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("sketch len = %d", s.Len())
	}
}

func TestEstimateMIWithCIAPI(t *testing.T) {
	train, cand := syntheticPair(t, 8000, 400)
	st, _ := SketchTrain(train, "key", "y", Options{})
	sc, _ := SketchCandidate(cand, "key", "x", Options{})
	res, ci, err := EstimateMIWithCI(st, sc, 40, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > res.MI || ci.Hi < res.MI {
		t.Errorf("estimate %v outside its interval [%v, %v]", res.MI, ci.Lo, ci.Hi)
	}
	if ci.Lo < 0 {
		t.Error("MI interval must be clamped at 0")
	}
	if ci.Level != 0.9 {
		t.Error("level not recorded")
	}
	// Seed mismatch surfaces as an error, not a panic.
	bad, _ := SketchCandidate(cand, "key", "x", Options{Seed: 99})
	if _, _, err := EstimateMIWithCI(st, bad, 10, 0.9, 1); err == nil {
		t.Error("seed mismatch should error")
	}
}
