package misketch

// golden_test.go is the repository's drift alarm: a small seeded
// synthetic corpus is committed under testdata/golden/, together with
// the exact rankings (names, order, estimator families, join sizes,
// and MI values down to the bit) every estimator family must produce
// over it. Any change that moves an estimate — a refactor of the
// estimators, the join, the hashing, the prefilter — fails
// TestGoldenRankings with a precise diff instead of silently shifting
// discovery results.
//
// Regenerate after an INTENTIONAL semantic change with:
//
//	go test -run TestGoldenRankings -update .
//
// which rewrites both the corpus CSVs (deterministic: fixed seed, fixed
// formatting) and testdata/golden/rankings.json. Review the resulting
// diff like any other semantic change.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden (corpus + expected rankings)")

const (
	goldenDir      = "testdata/golden"
	goldenCorpus   = "testdata/golden/corpus"
	goldenRankings = "testdata/golden/rankings.json"

	goldenSketchSize = 128
	goldenMinJoin    = 30
	goldenSeed       = 77
	goldenCandFiles  = 10
)

// goldenRecord is one expected ranking row. MI is stored twice: as a
// float for human review and as hex bits for exact comparison.
type goldenRecord struct {
	Name     string  `json:"name"`
	MI       float64 `json:"mi"`
	MIBits   string  `json:"mi_bits"`
	JoinSize int     `json:"join_size"`
}

// goldenQuery is one train target's expected result, grouped by
// estimator family (rankings are only comparable within a family; see
// the paper, Section V-C3).
type goldenQuery struct {
	Target   string                    `json:"target"`
	Pruned   int                       `json:"pruned"`
	Families map[string][]goldenRecord `json:"families"`
}

// goldenFile is the committed expectation.
type goldenFile struct {
	SketchSize int           `json:"sketch_size"`
	MinJoin    int           `json:"min_join"`
	K          int           `json:"k"`
	Queries    []goldenQuery `json:"queries"`
}

// writeGoldenCorpus regenerates the committed CSVs: one train table
// with a numeric and a categorical target, and candidate tables over
// sliding key windows with numeric and categorical features whose
// dependence on the key varies per file (including pure-noise files
// that should rank at the bottom, and far windows the prefilter
// prunes).
func writeGoldenCorpus(t *testing.T) {
	t.Helper()
	rng := rand.New(rand.NewSource(goldenSeed))
	if err := os.MkdirAll(goldenCorpus, 0o755); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("key,y_num,y_cat\n")
	for i := 0; i < 800; i++ {
		g := rng.Intn(80)
		fmt.Fprintf(&b, "k%03d,%.6f,cat%d\n", g, float64(g%9)+rng.NormFloat64(), (g+rng.Intn(3))%6)
	}
	if err := os.WriteFile(filepath.Join(goldenCorpus, "train.csv"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < goldenCandFiles; c++ {
		b.Reset()
		b.WriteString("key,x_num,x_cat\n")
		lo := c * 12 // windows slide from fully-overlapping to disjoint
		strength := float64(c % 4)
		for g := lo; g < lo+55; g++ {
			fmt.Fprintf(&b, "k%03d,%.6f,cat%d\n",
				g, strength*float64(g%9)+rng.NormFloat64(), (g+rng.Intn(2+c%3))%6)
		}
		name := fmt.Sprintf("c%02d.csv", c)
		if err := os.WriteFile(filepath.Join(goldenCorpus, name), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// goldenStore ingests the committed corpus into a fresh store and
// returns it with the two train sketches.
func goldenStore(t *testing.T) (*Store, map[string]*Sketch) {
	t.Helper()
	return goldenStoreAt(t, t.TempDir())
}

func goldenStoreAt(t *testing.T, dir string) (*Store, map[string]*Sketch) {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Size: goldenSketchSize}
	trainTb, err := ReadCSVFile(filepath.Join(goldenCorpus, "train.csv"))
	if err != nil {
		t.Fatal(err)
	}
	trains := make(map[string]*Sketch, 2)
	for _, target := range []string{"y_num", "y_cat"} {
		sk, err := SketchTrain(trainTb, "key", target, opt)
		if err != nil {
			t.Fatal(err)
		}
		trains[target] = sk
	}
	for c := 0; c < goldenCandFiles; c++ {
		file := fmt.Sprintf("c%02d.csv", c)
		tb, err := ReadCSVFile(filepath.Join(goldenCorpus, file))
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []string{"x_num", "x_cat"} {
			sk, err := SketchCandidate(tb, "key", col, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put(fmt.Sprintf("golden/%s#%s@key", file, col), sk); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st, trains
}

// computeGolden ranks both train targets over the corpus store —
// through the batch pipeline, whose results are asserted bit-identical
// to per-query RankQuery first — and groups each ranking by estimator
// family.
func computeGolden(t *testing.T, st *Store, trains map[string]*Sketch) goldenFile {
	t.Helper()
	ctx := context.Background()
	targets := []string{"y_num", "y_cat"}
	sks := make([]*Sketch, len(targets))
	for i, target := range targets {
		sks[i] = trains[target]
	}
	batch, err := RankBatch(ctx, st, sks, BatchRankOptions{
		MinJoinSize: goldenMinJoin, K: DefaultK,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := goldenFile{SketchSize: goldenSketchSize, MinJoin: goldenMinJoin, K: DefaultK}
	for i, target := range targets {
		direct, _, err := st.RankQuery(ctx, sks[i], RankOptions{MinJoinSize: goldenMinJoin, K: DefaultK})
		if err != nil {
			t.Fatal(err)
		}
		got := batch.Queries[i].Ranked
		if len(got) != len(direct) {
			t.Fatalf("%s: batch ranked %d, per-query %d", target, len(got), len(direct))
		}
		for j := range direct {
			if got[j].Name != direct[j].Name ||
				math.Float64bits(got[j].MI) != math.Float64bits(direct[j].MI) {
				t.Fatalf("%s rank[%d]: batch %+v != per-query %+v", target, j, got[j], direct[j])
			}
		}
		q := goldenQuery{Target: target, Pruned: batch.Queries[i].Pruned,
			Families: make(map[string][]goldenRecord)}
		for _, r := range direct {
			fam := string(r.Estimator)
			q.Families[fam] = append(q.Families[fam], goldenRecord{
				Name:     r.Name,
				MI:       r.MI,
				MIBits:   fmt.Sprintf("%016x", math.Float64bits(r.MI)),
				JoinSize: r.JoinSize,
			})
		}
		out.Queries = append(out.Queries, q)
	}
	return out
}

// TestGoldenRankingsIndexed re-runs the drift alarm against a sealed
// store: Close seals the segment and emits its inverted key index, so
// the reopened store answers through index-driven candidate selection
// — which must reproduce the committed rankings (and Pruned counts)
// bit for bit, exactly like the unsealed full-walk store.
func TestGoldenRankingsIndexed(t *testing.T) {
	if *updateGolden {
		t.Skip("golden regeneration runs through TestGoldenRankings")
	}
	dir := t.TempDir()
	st, trains := goldenStoreAt(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if ss := st.Stats(); ss.IndexedSegments == 0 {
		t.Fatalf("sealed golden store carries no key index: %+v", ss)
	}
	got := computeGolden(t, st, trains)

	raw, err := os.ReadFile(goldenRankings)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("indexed rankings drifted from committed golden file:\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
	if skips := st.Stats().CandidatesSkippedNoDecode; skips == 0 {
		t.Fatal("indexed golden store never skipped a decode")
	}
}

// TestGoldenRankingsCompressed re-runs the drift alarm against an
// FSST-compressed store: the golden corpus is ingested, sealed, and
// compacted with Compression on, so every candidate decode routes
// through the per-segment dictionary decoder — which must reproduce the
// committed rankings (names, order, families, join sizes, MI bits)
// exactly, proving compression is invisible to the estimators.
func TestGoldenRankingsCompressed(t *testing.T) {
	if *updateGolden {
		t.Skip("golden regeneration runs through TestGoldenRankings")
	}
	dir := t.TempDir()
	st, trains := goldenStoreAt(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStoreWithOptions(dir, OpenStoreOptions{Compression: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ss := st.Stats(); ss.CompressedSegments == 0 {
		t.Fatalf("compacted golden store is not compressed: %+v", ss)
	}
	got := computeGolden(t, st, trains)

	raw, err := os.ReadFile(goldenRankings)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("compressed rankings drifted from committed golden file:\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
}

// TestGoldenCascade extends the drift alarm to the two-tier cascade:
// over the committed golden corpus, top-K rankings with the cascade
// enabled must be bit-identical — names, order, estimator families,
// join sizes, MI bits — to the exact-only pass, for every train
// target, across top-K bounds and worker counts.
func TestGoldenCascade(t *testing.T) {
	if *updateGolden {
		t.Skip("golden regeneration runs through TestGoldenRankings")
	}
	st, trains := goldenStore(t)
	ctx := context.Background()
	for _, target := range []string{"y_num", "y_cat"} {
		sk := trains[target]
		for _, topK := range []int{1, 5, 50} {
			for _, workers := range []int{1, 4} {
				exact, _, err := st.RankQuery(ctx, sk, RankOptions{
					MinJoinSize: goldenMinJoin, K: DefaultK, TopK: topK,
					Workers: workers, NoCascade: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				cascade, _, err := st.RankQuery(ctx, sk, RankOptions{
					MinJoinSize: goldenMinJoin, K: DefaultK, TopK: topK,
					Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(exact) == 0 {
					t.Fatalf("%s topK=%d: exact pass ranked nothing", target, topK)
				}
				if len(cascade) != len(exact) {
					t.Fatalf("%s topK=%d workers=%d: cascade ranked %d, exact %d",
						target, topK, workers, len(cascade), len(exact))
				}
				for i := range exact {
					if cascade[i].Name != exact[i].Name ||
						cascade[i].Estimator != exact[i].Estimator ||
						cascade[i].JoinSize != exact[i].JoinSize ||
						math.Float64bits(cascade[i].MI) != math.Float64bits(exact[i].MI) {
						t.Fatalf("%s topK=%d workers=%d rank %d: cascade %+v != exact %+v",
							target, topK, workers, i, cascade[i], exact[i])
					}
				}
			}
		}
	}
}

// TestGoldenRankings compares the corpus rankings against the
// committed expectation, estimate by estimate and bit by bit.
func TestGoldenRankings(t *testing.T) {
	if *updateGolden {
		writeGoldenCorpus(t)
	}
	st, trains := goldenStore(t)
	got := computeGolden(t, st, trains)

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRankings, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d queries)", goldenRankings, len(got.Queries))
		return
	}

	raw, err := os.ReadFile(goldenRankings)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenRankings -update .` to generate)", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got.SketchSize != want.SketchSize || got.MinJoin != want.MinJoin || got.K != want.K {
		t.Fatalf("golden options drifted: got (%d,%d,%d), committed (%d,%d,%d)",
			got.SketchSize, got.MinJoin, got.K, want.SketchSize, want.MinJoin, want.K)
	}
	if len(got.Queries) != len(want.Queries) {
		t.Fatalf("%d queries, committed %d", len(got.Queries), len(want.Queries))
	}
	for i, wq := range want.Queries {
		gq := got.Queries[i]
		if gq.Target != wq.Target {
			t.Fatalf("query %d target %q, committed %q", i, gq.Target, wq.Target)
		}
		if gq.Pruned != wq.Pruned {
			t.Errorf("%s: prefilter pruned %d candidates, committed %d", wq.Target, gq.Pruned, wq.Pruned)
		}
		var wantFams, gotFams []string
		for f := range wq.Families {
			wantFams = append(wantFams, f)
		}
		for f := range gq.Families {
			gotFams = append(gotFams, f)
		}
		sort.Strings(wantFams)
		sort.Strings(gotFams)
		if strings.Join(gotFams, ",") != strings.Join(wantFams, ",") {
			t.Fatalf("%s: estimator families %v, committed %v", wq.Target, gotFams, wantFams)
		}
		for _, fam := range wantFams {
			wrs, grs := wq.Families[fam], gq.Families[fam]
			if len(grs) != len(wrs) {
				t.Fatalf("%s/%s: %d ranked, committed %d", wq.Target, fam, len(grs), len(wrs))
			}
			for j, wr := range wrs {
				gr := grs[j]
				if gr.Name != wr.Name {
					t.Errorf("%s/%s rank %d: order drifted, %q vs committed %q",
						wq.Target, fam, j, gr.Name, wr.Name)
					continue
				}
				if gr.MIBits != wr.MIBits {
					t.Errorf("%s/%s %s: estimate drifted, %v (bits %s) vs committed %v (bits %s)",
						wq.Target, fam, wr.Name, gr.MI, gr.MIBits, wr.MI, wr.MIBits)
				}
				if gr.JoinSize != wr.JoinSize {
					t.Errorf("%s/%s %s: join size drifted, %d vs committed %d",
						wq.Target, fam, wr.Name, gr.JoinSize, wr.JoinSize)
				}
			}
		}
	}
}
