package misketch

import (
	"context"

	"misketch/internal/core"
	"misketch/internal/store"
)

// This file exposes batch discovery: ranking many train sketches (an
// analyst's sweep over dozens of target columns) against the stored
// corpus in one pass, with the key-overlap prefilter pruning every
// (train, candidate) pair whose coordinated-sample key intersection
// already proves the join too small to pass the min-join filter.

// BatchRankOptions tunes a batch discovery query (Store.RankBatch /
// RankBatch): shared prefix, min join size, neighbor parameter, top-K
// bound and worker fan-out, plus optional pre-compiled probes (parallel
// to the trains) and a shared scratch pool.
type BatchRankOptions = store.BatchOptions

// BatchRanking is the result of a batch discovery query: one
// BatchQueryRanking per train, in input order, plus the shared skipped
// list.
type BatchRanking = store.BatchResult

// BatchQueryRanking is one train's slice of a BatchRanking: the ranked
// candidates (bit-identical to an independent Store.RankQuery) and the
// number of candidates the key-overlap prefilter pruned for this train.
type BatchQueryRanking = store.BatchQueryResult

// RankBatch ranks every train sketch against the store's candidates in
// one corpus pass; see Store.RankBatch. Each train's ranking is
// bit-for-bit what an independent Store.RankQuery call would return,
// but candidates are loaded once for the whole batch and the
// key-overlap prefilter skips the estimator for pairs whose sketch
// join provably has at most MinJoinSize samples. All trains must share
// a hash seed.
func RankBatch(ctx context.Context, st *Store, trains []*Sketch, opt BatchRankOptions) (*BatchRanking, error) {
	return st.RankBatch(ctx, trains, opt)
}

// KeyOverlap returns the sketch join size of (train, cand) computed
// from key hashes alone — the quantity the batch prefilter thresholds
// against the min-join filter. Both sketches must share a hash seed for
// the count to be meaningful.
func KeyOverlap(train, cand *Sketch) int {
	return core.KeyOverlap(train, cand)
}
