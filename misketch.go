// Package misketch estimates the mutual information (MI) between a target
// column in a base table and feature columns in external candidate tables
// — as it would be observed after joining them — without materializing
// the joins. It implements the sketching methods from "Efficiently
// Estimating Mutual Information Between Attributes Across Tables"
// (Santos, Korn, Freire; ICDE 2024), with TUPSK, the paper's tuple-based
// coordinated sampling sketch, as the recommended default.
//
// # Workflow
//
// Build a sketch of your base table once (keyed by the join column,
// carrying the prediction target), build candidate sketches for every
// external table worth joining (typically offline, at dataset-ingestion
// time), and then rank candidates by estimated MI:
//
//	train, _ := misketch.ReadCSVFile("taxi.csv")
//	st, _ := misketch.SketchTrain(train, "zip", "num_trips", misketch.Options{Size: 1024})
//	cand, _ := misketch.ReadCSVFile("demographics.csv")
//	sc, _ := misketch.SketchCandidate(cand, "zip", "population", misketch.Options{Size: 1024})
//	res, _ := misketch.EstimateMI(st, sc)
//	fmt.Println(res.MI, res.Estimator, res.N)
//
// Estimates are in nats. The estimator is chosen from the column types
// (MLE for string–string, Mixed-KSG for numeric–numeric, DC-KSG
// otherwise); per the paper, estimates from different estimators have
// different bias profiles and should be ranked separately.
package misketch

import (
	"fmt"
	"io"
	"os"
	"sort"

	"misketch/internal/core"
	"misketch/internal/mi"
	"misketch/internal/table"
)

// Table is an in-memory columnar table (string and float64 columns).
type Table = table.Table

// Column is one typed table column.
type Column = table.Column

// NewTable builds a table from columns of equal length and distinct names.
func NewTable(cols ...*Column) *Table { return table.New(cols...) }

// NewStringColumn returns a categorical column.
func NewStringColumn(name string, vals []string) *Column {
	return table.NewStringColumn(name, vals)
}

// NewFloatColumn returns a numerical column.
func NewFloatColumn(name string, vals []float64) *Column {
	return table.NewFloatColumn(name, vals)
}

// AggFunc names a featurization function used to collapse repeated
// candidate join keys into a single feature value.
type AggFunc = table.AggFunc

// The supported featurization functions.
const (
	AggAvg    = table.AggAvg
	AggSum    = table.AggSum
	AggCount  = table.AggCount
	AggMin    = table.AggMin
	AggMax    = table.AggMax
	AggMode   = table.AggMode
	AggFirst  = table.AggFirst
	AggMedian = table.AggMedian
)

// Method selects a sketching strategy.
type Method = core.Method

// The available sketching methods. TUPSK is the paper's proposal and the
// default; the others are the baselines it is evaluated against.
const (
	TUPSK = core.TUPSK
	LV2SK = core.LV2SK
	PRISK = core.PRISK
	INDSK = core.INDSK
	CSK   = core.CSK
)

// Options configures sketch construction; see core.Options for the full
// field documentation. A zero Method means TUPSK and a zero Size means
// DefaultSketchSize.
type Options = core.Options

// NullPolicy selects the treatment of NULL values in the value column;
// NULL join keys are always dropped.
type NullPolicy = core.NullPolicy

// The NULL policies: drop NULL-valued rows (the default) or keep them as
// a dedicated category in categorical columns.
const (
	NullDrop       = core.NullDrop
	NullAsCategory = core.NullAsCategory
)

// Sketch is a fixed-size table summary joinable against other sketches
// built with the same hash seed.
type Sketch = core.Sketch

// Result is an MI estimate: the value in nats, the estimator that
// produced it, and the sample size it was computed on.
type Result = mi.Result

// DefaultSketchSize is used when Options.Size is zero. The paper's
// real-data experiments use 1024.
const DefaultSketchSize = 1024

// DefaultK is the neighbor parameter of the KSG-family estimators.
const DefaultK = mi.DefaultK

// ReadCSV parses CSV (with a header row) into a Table, inferring column
// types: columns whose non-empty cells all parse as numbers become float
// columns, everything else becomes string columns.
func ReadCSV(r io.Reader) (*Table, error) { return table.ReadCSV(r) }

// ReadCSVFile reads a CSV file from disk via ReadCSV.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := table.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("misketch: reading %s: %w", path, err)
	}
	return t, nil
}

func normalizeOptions(opt Options) Options {
	if opt.Method == "" {
		opt.Method = TUPSK
	}
	if opt.Size == 0 {
		opt.Size = DefaultSketchSize
	}
	return opt
}

// SketchTrain sketches the base table: keyCol is the join key and
// targetCol the prediction target Y. Repeated keys are sampled so that
// their sketch frequency reflects their table frequency.
func SketchTrain(t *Table, keyCol, targetCol string, opt Options) (*Sketch, error) {
	return core.Build(t, keyCol, targetCol, core.RoleTrain, normalizeOptions(opt))
}

// SketchCandidate sketches an external table: keyCol is the join key and
// featureCol the feature X. Repeated keys are first collapsed with
// Options.Agg (default: first value seen).
func SketchCandidate(t *Table, keyCol, featureCol string, opt Options) (*Sketch, error) {
	return core.Build(t, keyCol, featureCol, core.RoleCandidate, normalizeOptions(opt))
}

// EstimateMI joins the two sketches and estimates the MI between the
// train target and the candidate feature over the (virtual) join, using
// DefaultK neighbors for the KSG-family estimators.
func EstimateMI(train, cand *Sketch) (Result, error) {
	return EstimateMIK(train, cand, DefaultK)
}

// EstimateMIK is EstimateMI with an explicit neighbor parameter k.
func EstimateMIK(train, cand *Sketch, k int) (Result, error) {
	return core.EstimateMI(train, cand, k)
}

// TrainProbe is a discovery query compiled once against its train
// sketch: the hash→entry index and value orderings every candidate
// probes. Compile it with CompileTrain when estimating against many
// candidates; it is immutable and safe to share across goroutines.
type TrainProbe = core.TrainProbe

// EstimatorScratch is the reusable per-worker state of the ranking hot
// path: join buffers, neighbor structures, interning maps. The zero
// value is ready to use; do not share one between goroutines.
type EstimatorScratch = core.Scratch

// CompileTrain builds the per-query index over a train sketch.
func CompileTrain(train *Sketch) *TrainProbe {
	return core.CompileTrainProbe(train)
}

// EstimateMIScratch estimates MI between the compiled train probe and a
// candidate on reusable scratch state — EstimateMI without the
// per-call allocations, returning bit-identical results. This is the
// loop Store ranking runs internally; use it directly when ranking
// in-memory candidates:
//
//	probe := misketch.CompileTrain(trainSketch)
//	var scratch misketch.EstimatorScratch
//	for _, c := range candidates {
//		res, err := misketch.EstimateMIScratch(probe, c, &scratch)
//		...
//	}
func EstimateMIScratch(probe *TrainProbe, cand *Sketch, s *EstimatorScratch) (Result, error) {
	return core.EstimateMIScratch(probe, cand, DefaultK, s)
}

// EstimateMIScratchK is EstimateMIScratch with an explicit neighbor
// parameter k.
func EstimateMIScratchK(probe *TrainProbe, cand *Sketch, k int, s *EstimatorScratch) (Result, error) {
	return core.EstimateMIScratch(probe, cand, k, s)
}

// FullJoinMI materializes the aggregate-then-left-join query and
// estimates MI on the complete result — the expensive reference the
// sketches approximate. Useful for validating sketch quality on small
// tables.
func FullJoinMI(train *Table, trainKey, targetCol string,
	cand *Table, candKey, featureCol string, agg AggFunc) (Result, error) {
	return core.FullJoinMI(train, trainKey, targetCol, cand, candKey, featureCol, agg, DefaultK)
}

// Candidate pairs a candidate sketch with an identifier for ranking.
type Candidate struct {
	// Name identifies the candidate (e.g., "table.column").
	Name string
	// Sketch is the candidate's sketch, built with the same seed as the
	// train sketch.
	Sketch *Sketch
}

// Ranked is one row of a discovery ranking.
type Ranked struct {
	Name string
	// MI is the estimated mutual information with the train target (nats).
	MI float64
	// Estimator produced the estimate; rankings should be compared within
	// one estimator family (see the paper, Section V-C3).
	Estimator mi.Estimator
	// JoinSize is the sketch join size the estimate used; small values
	// mean low confidence (the paper filters JoinSize ≤ 100).
	JoinSize int
}

// Rank estimates MI between the train sketch and every candidate and
// returns the candidates sorted by decreasing MI — the paper's
// data-discovery query ("which external tables are worth joining?").
// Candidates whose sketch join has at most minJoinSize samples are
// dropped: minJoinSize is the largest join size still excluded, matching
// the paper's "JoinSize ≤ 100" filter and the boundary Store.Rank
// applies. Zero keeps every candidate with a non-empty join.
func Rank(train *Sketch, cands []Candidate, minJoinSize int) ([]Ranked, error) {
	probe := core.CompileTrainProbe(train)
	var scratch core.Scratch
	var out []Ranked
	for _, c := range cands {
		r, err := core.EstimateMIScratch(probe, c.Sketch, DefaultK, &scratch)
		if err != nil {
			return nil, fmt.Errorf("misketch: ranking %s: %w", c.Name, err)
		}
		if r.N <= minJoinSize {
			continue
		}
		out = append(out, Ranked{Name: c.Name, MI: r.MI, Estimator: r.Estimator, JoinSize: r.N})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MI != out[j].MI {
			return out[i].MI > out[j].MI
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// RankSmoothed ranks like Rank but scores discrete–discrete candidates
// with the Laplace-smoothed MLE (pseudocount alpha) instead of the raw
// plug-in estimator. Smoothing pulls high-cardinality null candidates
// toward zero much harder than genuine signals, trading the raw MLE's
// recall for fewer false discoveries — the deployment trade-off the
// paper's conclusion highlights. Non-discrete pairs are scored as in
// Rank, and the min-join boundary is Rank's: joins with at most
// minJoinSize samples are dropped.
func RankSmoothed(train *Sketch, cands []Candidate, minJoinSize int, alpha float64) ([]Ranked, error) {
	probe := core.CompileTrainProbe(train)
	var scratch core.Scratch
	var out []Ranked
	for _, c := range cands {
		js, err := probe.JoinScratch(c.Sketch, &scratch)
		if err != nil {
			return nil, fmt.Errorf("misketch: ranking %s: %w", c.Name, err)
		}
		if js.Size <= minJoinSize {
			continue
		}
		var r Ranked
		r.Name = c.Name
		r.JoinSize = js.Size
		if !js.Y.IsNumeric() && !js.X.IsNumeric() {
			r.Estimator = mi.EstMLE
			r.MI = mi.MLESmoothed(js.Y.Str, js.X.Str, alpha)
		} else {
			res := scratch.MI.Estimate(js.Y, js.X, DefaultK)
			r.Estimator = res.Estimator
			r.MI = res.MI
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MI != out[j].MI {
			return out[i].MI > out[j].MI
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}
