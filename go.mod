module misketch

go 1.24
