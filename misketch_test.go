package misketch

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempCSV writes a CSV file and returns its path.
func writeTempCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadCSVFile(t *testing.T) {
	path := writeTempCSV(t, "t.csv", "zip,trips\n11201,136\n10011,112\n")
	tb, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Column("trips") == nil {
		t.Error("CSV parse failed")
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTempCSV(t, "bad.csv", "")
	if _, err := ReadCSVFile(bad); err == nil || !strings.Contains(err.Error(), "bad.csv") {
		t.Errorf("error should name the file: %v", err)
	}
}

// syntheticPair creates train/cand CSV-equivalent tables where the
// candidate feature determines the target.
func syntheticPair(t *testing.T, n, groups int) (*Table, *Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var trainCSV strings.Builder
	trainCSV.WriteString("key,y\n")
	for i := 0; i < n; i++ {
		g := rng.Intn(groups)
		fmt.Fprintf(&trainCSV, "g%d,%d\n", g, g%5)
	}
	var candCSV strings.Builder
	candCSV.WriteString("key,x\n")
	for g := 0; g < groups; g++ {
		fmt.Fprintf(&candCSV, "g%d,%d\n", g, g%5)
	}
	train, err := ReadCSV(strings.NewReader(trainCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	cand, err := ReadCSV(strings.NewReader(candCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	return train, cand
}

func TestEndToEndEstimate(t *testing.T) {
	train, cand := syntheticPair(t, 6000, 400)
	st, err := SketchTrain(train, "key", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := SketchCandidate(cand, "key", "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateMI(st, sc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullJoinMI(train, "key", "y", cand, "key", "x", AggFirst)
	if err != nil {
		t.Fatal(err)
	}
	// x determines y (both are g mod 5): MI ≈ H ≈ ln 5 on the full join,
	// and the sketch estimate should track it.
	if math.Abs(full.MI-math.Log(5)) > 0.1 {
		t.Errorf("full MI = %v, want about ln5", full.MI)
	}
	if math.Abs(res.MI-full.MI) > 0.4 {
		t.Errorf("sketch MI = %v vs full %v", res.MI, full.MI)
	}
}

func TestOptionsDefaults(t *testing.T) {
	train, _ := syntheticPair(t, 500, 50)
	s, err := SketchTrain(train, "key", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Method != TUPSK {
		t.Errorf("default method = %v, want TUPSK", s.Method)
	}
	if s.Size != DefaultSketchSize {
		t.Errorf("default size = %d", s.Size)
	}
}

func TestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, groups = 6000, 500
	var trainCSV strings.Builder
	trainCSV.WriteString("key,y\n")
	ys := make(map[int]float64, groups)
	for g := 0; g < groups; g++ {
		ys[g] = float64(g % 7)
	}
	for i := 0; i < n; i++ {
		g := rng.Intn(groups)
		fmt.Fprintf(&trainCSV, "g%d,%g\n", g, ys[g])
	}
	train, err := ReadCSV(strings.NewReader(trainCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := SketchTrain(train, "key", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Three candidates: informative, partially informative, and noise.
	mkCand := func(f func(g int) float64) *Sketch {
		var b strings.Builder
		b.WriteString("key,x\n")
		for g := 0; g < groups; g++ {
			fmt.Fprintf(&b, "g%d,%g\n", g, f(g))
		}
		tb, err := ReadCSV(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := SketchCandidate(tb, "key", "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cands := []Candidate{
		{Name: "noise", Sketch: mkCand(func(g int) float64 { return rng.NormFloat64() })},
		{Name: "exact", Sketch: mkCand(func(g int) float64 { return ys[g] })},
		{Name: "partial", Sketch: mkCand(func(g int) float64 { return ys[g] + 2*rng.NormFloat64() })},
	}
	ranked, err := Rank(st, cands, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d candidates", len(ranked))
	}
	if ranked[0].Name != "exact" {
		t.Errorf("best candidate = %s, want exact (ranking: %+v)", ranked[0].Name, ranked)
	}
	if ranked[2].Name != "noise" {
		t.Errorf("worst candidate = %s, want noise", ranked[2].Name)
	}
	// The filter drops candidates with tiny sketch joins.
	none, err := Rank(st, cands, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Error("min join filter not applied")
	}
}

func TestSeedMismatchSurfaces(t *testing.T) {
	train, cand := syntheticPair(t, 500, 50)
	st, _ := SketchTrain(train, "key", "y", Options{Seed: 1})
	sc, _ := SketchCandidate(cand, "key", "x", Options{Seed: 2})
	if _, err := EstimateMI(st, sc); err == nil {
		t.Error("seed mismatch should error")
	}
}

func TestRankSmoothed(t *testing.T) {
	// Discrete target; null candidates with high cardinality fool the raw
	// MLE but not the smoothed ranking.
	rng := rand.New(rand.NewSource(31))
	const groups = 1500
	var trainCSV strings.Builder
	trainCSV.WriteString("key,y\n")
	for i := 0; i < 9000; i++ {
		g := rng.Intn(groups)
		fmt.Fprintf(&trainCSV, "g%d,y%d\n", g, g%4)
	}
	train, err := ReadCSV(strings.NewReader(trainCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := SketchTrain(train, "key", "y", Options{Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	mkCand := func(f func(g int) string) *Sketch {
		var b strings.Builder
		b.WriteString("key,x\n")
		for g := 0; g < groups; g++ {
			fmt.Fprintf(&b, "g%d,%s\n", g, f(g))
		}
		tb, _ := ReadCSV(strings.NewReader(b.String()))
		// Candidate sketches sized to retain every key: only the train
		// side needs sampling, and the sketch join recovers all 256
		// train entries (see the candidate-size ablation in
		// EXPERIMENTS.md).
		s, err := SketchCandidate(tb, "key", "x", Options{Size: 2048})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cands := []Candidate{
		{Name: "signal", Sketch: mkCand(func(g int) string { return fmt.Sprintf("x%d", g%4) })},
		{Name: "highcard-null", Sketch: mkCand(func(g int) string { return fmt.Sprintf("n%d", rng.Intn(400)) })},
	}
	smoothed, err := RankSmoothed(st, cands, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(smoothed) != 2 || smoothed[0].Name != "signal" {
		t.Fatalf("smoothed ranking wrong: %+v", smoothed)
	}
	// The null's smoothed score must be a small fraction of the signal's.
	if smoothed[1].MI > 0.3*smoothed[0].MI {
		t.Errorf("null score %.3f not suppressed vs signal %.3f", smoothed[1].MI, smoothed[0].MI)
	}
	// Filter behaves as in Rank.
	none, err := RankSmoothed(st, cands, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Error("min join filter not applied")
	}
}
