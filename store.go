package misketch

import (
	"io"
	"math/rand"
	"os"

	"misketch/internal/core"
	"misketch/internal/mi"
	"misketch/internal/store"
	"misketch/internal/table"
)

// This file exposes the system-level features around the core estimate
// pipeline: streaming sketch construction, sketch persistence, the
// on-disk discovery store, composite join keys, and confidence intervals.

// StreamBuilder builds a sketch from a stream of (key, value) rows in one
// pass without materializing the table — the ingestion-time mode for
// production pipelines. PRISK is not streamable.
type StreamBuilder = core.StreamBuilder

// Role distinguishes the two join sides when streaming.
type Role = core.Role

// The two sketch roles.
const (
	RoleTrain     = core.RoleTrain
	RoleCandidate = core.RoleCandidate
)

// NewStreamBuilder returns a one-pass sketch builder; numeric selects the
// value kind. Feed rows with AddNum/AddStr and call Sketch to snapshot.
func NewStreamBuilder(role Role, numeric bool, opt Options) (*StreamBuilder, error) {
	return core.NewStreamBuilder(role, numeric, normalizeOptions(opt))
}

// WriteSketch serializes a sketch to w in the versioned binary format.
func WriteSketch(w io.Writer, s *Sketch) error {
	_, err := s.WriteTo(w)
	return err
}

// ReadSketch deserializes a sketch written by WriteSketch.
func ReadSketch(r io.Reader) (*Sketch, error) {
	return core.ReadSketch(r)
}

// SaveSketch writes a sketch to a file.
func SaveSketch(path string, s *Sketch) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSketch reads a sketch from a file.
func LoadSketch(path string) (*Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadSketch(f)
}

// Store is a directory of persisted sketches serving discovery queries;
// see OpenStore.
type Store = store.Store

// RankedSketch is one result of a Store discovery query.
type RankedSketch = store.RankedSketch

// OpenStore opens (creating if necessary) a sketch store rooted at dir.
// Typical usage: at ingestion time, SketchCandidate every column of every
// dataset and Put it; at query time, SketchTrain the user's table and
// Rank against the store.
func OpenStore(dir string) (*Store, error) {
	return store.Open(dir)
}

// WithCompositeKey returns a copy of t extended with a string key column
// concatenating the given columns — multi-attribute join keys from the
// paper's problem statement. Sketch the result on the new column:
//
//	t2, _ := misketch.WithCompositeKey(t, "_key", []string{"date", "zip"})
//	s, _ := misketch.SketchTrain(t2, "_key", "target", misketch.Options{})
func WithCompositeKey(t *Table, name string, cols []string) (*Table, error) {
	return table.WithCompositeKey(t, name, cols)
}

// Interval is a two-sided confidence interval around an MI estimate.
type Interval = mi.Interval

// EstimateMIWithCI is EstimateMI plus a subsampling confidence interval
// at the given level (e.g. 0.95), computed from reps half-size
// subsamples of the sketch join. Width shrinks at roughly a square-root
// rate in the sketch join size, per the error bounds the paper cites.
func EstimateMIWithCI(train, cand *Sketch, reps int, level float64, seed int64) (Result, Interval, error) {
	js, err := core.Join(train, cand)
	if err != nil {
		return Result{}, Interval{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	res, ci := mi.EstimateWithCI(js.Y, js.X, DefaultK, reps, level, rng)
	return res, ci, nil
}
