package misketch

import (
	"io"
	"math/rand"
	"os"

	"misketch/internal/core"
	"misketch/internal/mi"
	"misketch/internal/store"
	"misketch/internal/table"
)

// This file exposes the system-level features around the core estimate
// pipeline: streaming sketch construction, sketch persistence, the
// on-disk discovery store, composite join keys, and confidence intervals.

// StreamBuilder builds a sketch from a stream of (key, value) rows in one
// pass without materializing the table — the ingestion-time mode for
// production pipelines. PRISK is not streamable.
type StreamBuilder = core.StreamBuilder

// Role distinguishes the two join sides when streaming.
type Role = core.Role

// The two sketch roles.
const (
	RoleTrain     = core.RoleTrain
	RoleCandidate = core.RoleCandidate
)

// NewStreamBuilder returns a one-pass sketch builder; numeric selects the
// value kind. Feed rows with AddNum/AddStr and call Sketch to snapshot.
func NewStreamBuilder(role Role, numeric bool, opt Options) (*StreamBuilder, error) {
	return core.NewStreamBuilder(role, numeric, normalizeOptions(opt))
}

// BuildStreaming runs a table's (key, value) column pair through a
// StreamBuilder in one pass — the natural entry point when the caller
// already has columnar data and wants streaming construction semantics
// (no intermediate aggregate-table materialization on the candidate
// side).
func BuildStreaming(t *Table, keyCol, valCol string, role Role, opt Options) (*Sketch, error) {
	return core.BuildStreaming(t, keyCol, valCol, role, normalizeOptions(opt))
}

// WriteSketch serializes a sketch to w in the versioned binary format.
func WriteSketch(w io.Writer, s *Sketch) error {
	_, err := s.WriteTo(w)
	return err
}

// ReadSketch deserializes a sketch written by WriteSketch.
func ReadSketch(r io.Reader) (*Sketch, error) {
	return core.ReadSketch(r)
}

// SketchHeader is the metadata prefix of a serialized sketch: seed,
// role, method, value kind, sizes — everything a catalog needs to filter
// candidates without decoding sketch bodies.
type SketchHeader = core.SketchHeader

// ReadSketchHeader decodes only the header of a serialized sketch,
// skipping its body. Stores use it to rebuild their manifest from a
// directory of sketch files. Buffered read-ahead may consume r past the
// header bytes; reopen the source to decode the full sketch afterwards.
func ReadSketchHeader(r io.Reader) (*SketchHeader, error) {
	return core.ReadSketchHeader(r)
}

// SaveSketch writes a sketch to a file.
func SaveSketch(path string, s *Sketch) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := s.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSketch reads a sketch from a file.
func LoadSketch(path string) (*Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadSketch(f)
}

// Store is a manifest-indexed catalog of persisted sketches serving
// discovery queries; see OpenStore. Storage is pluggable
// (OpenStoreOptions.Backend): the default "fs" engine packs sketches
// into append-only, mmap-backed segment files — ranking decodes
// candidates in place out of the mappings with zero per-candidate
// syscalls or copies, mutations append fsynced records replayed on
// crash, and Compact (or the background loop enabled by
// OpenStoreOptions.CompactEvery) folds overwrites and deletes into
// fresh segments. The "mem" backend keeps everything in process memory
// for diskless services and tests. Ranking filters candidates on the
// manifest alone (no record decodes for excluded candidates), supports
// context cancellation via RankContext, and bounds results to the top K
// with per-worker heaps.
type Store = store.Store

// Storage backends selectable via OpenStoreOptions.Backend.
const (
	// BackendFS is the default: segment-packed, mmap-backed durable
	// storage rooted at the store directory.
	BackendFS = store.BackendFS
	// BackendMem keeps every sketch in process memory; nothing touches
	// disk and the directory argument is ignored.
	BackendMem = store.BackendMem
)

// SegmentInfo describes one live segment file of an fs-backed store;
// see Store.Segments.
type SegmentInfo = store.SegmentInfo

// CompactStats reports one Store.Compact pass: segments and bytes
// before/after, live records copied, dead bytes reclaimed.
type CompactStats = store.CompactStats

// RankedSketch is one result of a Store discovery query.
type RankedSketch = store.RankedSketch

// RankOptions tunes a Store discovery query (Store.RankQuery): name
// prefix, min join size, neighbor parameter, top-K bound, worker
// fan-out (0 picks a default from GOMAXPROCS and the candidate count),
// and the two-tier estimator cascade (on by default for top-K queries;
// NoCascade forces the exact tier everywhere, CascadeMargin overrides
// the calibrated safety margin).
type RankOptions = store.RankOptions

// DefaultCascadeMargin is the calibrated safety margin, in nats, the
// ranking cascade adds to its cheap-tier score when deciding whether a
// candidate could still reach the running top-K; see
// RankOptions.CascadeMargin.
const DefaultCascadeMargin = store.DefaultCascadeMargin

// OpenStoreOptions tunes a store handle: CacheBytes bounds the
// decoded-sketch LRU cache (zero means the 64 MiB default, negative
// disables caching), Backend selects the storage engine (BackendFS
// default, BackendMem for diskless), SegmentBytes sets the fs segment
// roll threshold, and CompactEvery/CompactMinGarbage enable the
// background compaction loop. Compression makes compaction write
// FSST-compressed segments (categorical values packed against a
// per-segment symbol table, key hashes dictionary-coded) — rankings stay
// bit-identical, raw and compressed segments mix freely, and existing
// segments compress at their next compaction (`store compact -compress`
// backfills in one pass). Shards is the legacy file-per-sketch fan-out,
// accepted and ignored (legacy stores of any fan-out migrate
// transparently on open).
type OpenStoreOptions = store.OpenOptions

// SketchMeta is one manifest record: the per-sketch metadata (seed,
// role, method, value kind, sizes) discovery queries filter on without
// touching sketch bytes, plus the packed record's segment location.
type SketchMeta = store.Meta

// ErrNotFound is the sentinel Store.Get and Store.Delete wrap when no
// sketch with the requested name exists — test with errors.Is. A load
// failure that is NOT ErrNotFound (a CRC mismatch, an I/O error) means
// the record exists but could not be read; callers classifying errors
// (the HTTP layer's 404-vs-500 split) must not treat it as a miss.
var ErrNotFound = store.ErrNotFound

// StoreStats are observability counters for a store handle: backend
// kind, segment count/bytes/liveness, compaction passes, cache
// hits/misses/evictions, bytes cached, record decodes, the ranking
// cascade's tier counters (pairs settled by the cheap tier alone, pairs
// that paid the exact tier, margin/guard rescues), and the compression
// counters (compressed segment count, stored vs raw-equivalent record
// bytes — the achieved ratio is RawBytes/CompressedBytes).
type StoreStats = store.Stats

// OpenStore opens (creating if necessary) a sketch store rooted at dir
// with default options. Typical usage: at ingestion time,
// SketchCandidate every column of every dataset and Put it (then Close
// to persist the manifest); at query time, SketchTrain the user's table
// and Rank — or RankContext for cancellation and top-K — against the
// store.
func OpenStore(dir string) (*Store, error) {
	return store.Open(dir)
}

// OpenStoreWithOptions is OpenStore with explicit cache and sharding
// options.
func OpenStoreWithOptions(dir string, opt OpenStoreOptions) (*Store, error) {
	return store.OpenWithOptions(dir, opt)
}

// WithCompositeKey returns a copy of t extended with a string key column
// concatenating the given columns — multi-attribute join keys from the
// paper's problem statement. Sketch the result on the new column:
//
//	t2, _ := misketch.WithCompositeKey(t, "_key", []string{"date", "zip"})
//	s, _ := misketch.SketchTrain(t2, "_key", "target", misketch.Options{})
func WithCompositeKey(t *Table, name string, cols []string) (*Table, error) {
	return table.WithCompositeKey(t, name, cols)
}

// Interval is a two-sided confidence interval around an MI estimate.
type Interval = mi.Interval

// EstimateMIWithCI is EstimateMI plus a subsampling confidence interval
// at the given level (e.g. 0.95), computed from reps half-size
// subsamples of the sketch join. Width shrinks at roughly a square-root
// rate in the sketch join size, per the error bounds the paper cites.
func EstimateMIWithCI(train, cand *Sketch, reps int, level float64, seed int64) (Result, Interval, error) {
	js, err := core.Join(train, cand)
	if err != nil {
		return Result{}, Interval{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	res, ci := mi.EstimateWithCI(js.Y, js.X, DefaultK, reps, level, rng)
	return res, ci, nil
}
