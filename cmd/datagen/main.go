// Command datagen materializes the synthetic workloads as CSV files: the
// paper's Trinomial/CDUnif benchmark tables and the NYC/WBF open-data
// stand-in corpora. Useful for inspecting the data the experiments run
// on, and for feeding the misketch CLI realistic inputs.
//
// Usage:
//
//	datagen -out DIR [-kind trinomial|cdunif|corpus] [-m 512] [-rows 10000]
//	        [-collection NYC|WBF] [-tables 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"misketch/internal/corpus"
	"misketch/internal/synth"
	"misketch/internal/table"
)

func main() {
	var (
		out        = flag.String("out", "", "output directory (required)")
		kind       = flag.String("kind", "trinomial", "what to generate: trinomial, cdunif, corpus")
		m          = flag.Int("m", 512, "distinct-value parameter for synthetic distributions")
		rows       = flag.Int("rows", 10000, "rows per synthetic dataset")
		keygen     = flag.String("keygen", "keydep", "key decomposition: keyind or keydep")
		collection = flag.String("collection", "WBF", "corpus config: NYC or WBF")
		tables     = flag.Int("tables", 0, "override number of corpus tables (0 = config default)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	die(os.MkdirAll(*out, 0o755))
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "trinomial", "cdunif":
		var ds *synth.Dataset
		if *kind == "trinomial" {
			ds = synth.GenTrinomial(*m, *rows, rng)
		} else {
			ds = synth.GenCDUnif(*m, *rows, rng)
		}
		kg := synth.KeyDep
		if *keygen == "keyind" {
			kg = synth.KeyInd
		}
		tr := synth.TreatMixture
		train, cand, err := ds.Tables(kg, tr, rng)
		die(err)
		writeCSV(filepath.Join(*out, "train.csv"), train)
		writeCSV(filepath.Join(*out, "cand.csv"), cand)
		fmt.Printf("wrote %s: train.csv (%d rows), cand.csv (%d rows), true MI = %.4f nats\n",
			ds.Name, train.NumRows(), cand.NumRows(), ds.TrueMI)
	case "corpus":
		cfg := corpus.WBFConfig()
		if *collection == "NYC" {
			cfg = corpus.NYCConfig()
		}
		if *tables > 0 {
			cfg.NumTables = *tables
		}
		c := corpus.Generate(cfg, *seed)
		for _, tb := range c.Tables {
			name := fmt.Sprintf("%s_d%d_t%03d.csv", cfg.Name, tb.Domain, tb.ID)
			writeCSV(filepath.Join(*out, name), tb.T)
		}
		fmt.Printf("wrote %d tables of the %s stand-in to %s\n", len(c.Tables), cfg.Name, *out)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func writeCSV(path string, t *table.Table) {
	f, err := os.Create(path)
	die(err)
	die(t.WriteCSV(f))
	die(f.Close())
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
