// Command misketch estimates mutual information between columns of CSV
// tables across a (virtual) join, using the TUPSK sketches from the
// paper. It supports one-shot estimation between two tables and ranking
// a directory of candidate tables against a base table.
//
// Estimate MI between taxi.csv#num_trips and weather.csv#temp joined on
// their date columns, without materializing the join:
//
//	misketch estimate -train taxi.csv -train-key date -target num_trips \
//	                  -cand weather.csv -cand-key date -feature temp -agg avg
//
// Rank every column of every CSV file in ./candidates/ by estimated MI
// with the target:
//
//	misketch rank -train taxi.csv -train-key date -target num_trips ./candidates
//
// Compare the sketch estimate against the exact full-join computation:
//
//	misketch estimate -full ...
//
// Maintain an on-disk sketch store (sharded, manifest-indexed): bulk
// ingest every column of every CSV in a directory through a parallel
// StreamBuilder pool, then answer discovery queries against it:
//
//	misketch store ingest -store ./sketches -key date ./candidates
//	misketch store rank   -store ./sketches -train taxi.csv -train-key date -target num_trips
//
// Sweep several target columns in one batch — the store is walked once
// and the key-overlap prefilter prunes (target, candidate) pairs whose
// join is provably too small:
//
//	misketch store rank -store ./sketches -train taxi.csv -train-key date \
//	                    -trains num_trips,avg_fare,tip_ratio
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"misketch"
	"misketch/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "estimate":
		runEstimate(os.Args[2:])
	case "rank":
		runRank(os.Args[2:])
	case "store":
		runStore(os.Args[2:])
	case "serve":
		runServe(os.Args[2:])
	case "bench":
		runBench(os.Args[2:])
	case "loadtest":
		runLoadtest(os.Args[2:])
	case "sketch": // legacy spelling of "store ingest" over explicit files
		runStoreIngest(os.Args[2:])
	case "store-rank": // legacy spelling of "store rank"
		runStoreRank(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  misketch estimate      -train FILE -train-key COL -target COL -cand FILE -cand-key COL -feature COL [flags]
  misketch rank          -train FILE -train-key COL -target COL [flags] CANDIDATE_DIR
  misketch store ingest  -store DIR -key COL [-workers N] [flags] CSV_OR_DIR...
  misketch store rank    -store DIR -train FILE -train-key COL -target COL [-trains COL,COL,...] [-workers N]
                         [-no-cascade] [-cascade-margin NATS] [-stats] [flags]
  misketch store ls      -store DIR [-segments]
  misketch store rebuild -store DIR
  misketch store compact -store DIR [-compress]
  misketch store index   -store DIR
  misketch serve         -store DIR [-addr :8080] [-max-workers N] [-probe-cache N] [-cache BYTES]
                         [-backend fs|mem] [-compact-every DUR] [-segment-bytes N] [-pprof]
  misketch serve         -coordinator -shards URL,URL,... [-addr :8080] [-shard-timeout DUR]
                         [-shard-connect-timeout DUR] [-shard-retries N]
  misketch bench         [-candidates N] [-top K] [-iters N] [-no-cascade] [-out FILE]
                         [-shard-index I -shard-count N] [-cpuprofile FILE] [-memprofile FILE]
  misketch loadtest      -url URL [-duration 10s] [-concurrency N] [-top K] [-min-join N]
                         [-prefix P] [-sketch FILE] [-label NAME] [-out FILE]
  (legacy aliases: "sketch" = store ingest, "store-rank" = store rank)`)
}

// runStore dispatches the store subcommand family.
func runStore(args []string) {
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "ingest":
		runStoreIngest(args[1:])
	case "rank":
		runStoreRank(args[1:])
	case "ls":
		runStoreLs(args[1:])
	case "rebuild":
		runStoreRebuild(args[1:])
	case "compact":
		runStoreCompact(args[1:])
	case "index":
		runStoreIndex(args[1:])
	default:
		usage()
		os.Exit(2)
	}
}

// commonFlags registers the flags shared by both subcommands.
func commonFlags(fs *flag.FlagSet) (train, trainKey, target *string, size *int, agg *string, seed *uint) {
	train = fs.String("train", "", "base table CSV file")
	trainKey = fs.String("train-key", "", "join-key column of the base table")
	target = fs.String("target", "", "target column of the base table")
	size = fs.Int("sketch", misketch.DefaultSketchSize, "sketch size n")
	agg = fs.String("agg", "first", "aggregation for repeated candidate keys: avg|sum|count|min|max|mode|first|median")
	seed = fs.Uint("seed", 0, "hash seed (0 = default); both sketches must share it")
	return
}

func buildTrainSketch(train, trainKey, target string, size int, seed uint) *misketch.Sketch {
	tb, err := misketch.ReadCSVFile(train)
	die(err)
	s, err := misketch.SketchTrain(tb, trainKey, target, misketch.Options{
		Size: size, Seed: uint32(seed),
	})
	die(err)
	return s
}

func runEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	train, trainKey, target, size, agg, seed := commonFlags(fs)
	cand := fs.String("cand", "", "candidate table CSV file")
	candKey := fs.String("cand-key", "", "join-key column of the candidate table")
	feature := fs.String("feature", "", "feature column of the candidate table")
	full := fs.Bool("full", false, "also compute the exact full-join MI for comparison")
	ci := fs.Bool("ci", false, "attach a 95% subsampling confidence interval to the sketch estimate")
	die(fs.Parse(args))
	requireFlags(map[string]string{
		"train": *train, "train-key": *trainKey, "target": *target,
		"cand": *cand, "cand-key": *candKey, "feature": *feature,
	})

	st := buildTrainSketch(*train, *trainKey, *target, *size, *seed)
	candTable, err := misketch.ReadCSVFile(*cand)
	die(err)
	sc, err := misketch.SketchCandidate(candTable, *candKey, *feature, misketch.Options{
		Size: *size, Seed: uint32(*seed), Agg: misketch.AggFunc(*agg),
	})
	die(err)
	res, err := misketch.EstimateMI(st, sc)
	die(err)
	fmt.Printf("sketch MI estimate: %.4f nats (estimator %s, sketch join size %d)\n",
		res.MI, res.Estimator, res.N)
	if *ci {
		_, interval, err := misketch.EstimateMIWithCI(st, sc, 100, 0.95, 1)
		die(err)
		fmt.Printf("95%% confidence:     [%.4f, %.4f]\n", interval.Lo, interval.Hi)
	}
	if *full {
		trainTable, err := misketch.ReadCSVFile(*train)
		die(err)
		fr, err := misketch.FullJoinMI(trainTable, *trainKey, *target,
			candTable, *candKey, *feature, misketch.AggFunc(*agg))
		die(err)
		fmt.Printf("full-join MI:       %.4f nats (estimator %s, join size %d)\n",
			fr.MI, fr.Estimator, fr.N)
	}
}

func runRank(args []string) {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	train, trainKey, target, size, agg, seed := commonFlags(fs)
	candKey := fs.String("cand-key", "", "join-key column of candidates (default: same name as -train-key)")
	minJoin := fs.Int("min-join", 100, "drop candidates whose sketch join has at most this many samples")
	top := fs.Int("top", 20, "show the top-K candidates")
	die(fs.Parse(args))
	requireFlags(map[string]string{"train": *train, "train-key": *trainKey, "target": *target})
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "rank: exactly one candidate directory required")
		os.Exit(2)
	}
	dir := fs.Arg(0)
	key := *candKey
	if key == "" {
		key = *trainKey
	}

	st := buildTrainSketch(*train, *trainKey, *target, *size, *seed)

	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	die(err)
	sort.Strings(paths)
	var cands []misketch.Candidate
	for _, p := range paths {
		tb, err := misketch.ReadCSVFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", p, err)
			continue
		}
		if tb.Column(key) == nil {
			continue // not joinable on this key
		}
		for _, col := range tb.Columns() {
			if col.Name == key {
				continue
			}
			s, err := misketch.SketchCandidate(tb, key, col.Name, misketch.Options{
				Size: *size, Seed: uint32(*seed), Agg: pickAgg(misketch.AggFunc(*agg), col),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "skipping %s#%s: %v\n", p, col.Name, err)
				continue
			}
			cands = append(cands, misketch.Candidate{
				Name:   fmt.Sprintf("%s#%s", filepath.Base(p), col.Name),
				Sketch: s,
			})
		}
	}
	if len(cands) == 0 {
		fmt.Fprintf(os.Stderr, "no joinable candidate columns found in %s (key %q)\n", dir, key)
		os.Exit(1)
	}
	ranked, err := misketch.Rank(st, cands, *minJoin)
	die(err)
	fmt.Printf("%-40s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("%-40s %10.4f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
	}
	fmt.Printf("(%d candidates evaluated, %d passed the min-join filter; rank within one estimator family)\n",
		len(cands), len(ranked))
}

// pickAgg falls back to MODE for string columns when the requested
// aggregate needs numeric input.
func pickAgg(requested misketch.AggFunc, col *misketch.Column) misketch.AggFunc {
	if _, ok := requested.OutputKind(col.Kind); ok {
		return requested
	}
	if col.Kind == table.KindString {
		return misketch.AggMode
	}
	return misketch.AggFirst
}

func requireFlags(vals map[string]string) {
	for name, v := range vals {
		if v == "" {
			fmt.Fprintf(os.Stderr, "missing required flag -%s\n", name)
			os.Exit(2)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "misketch:", err)
		os.Exit(1)
	}
}

// runStoreIngest bulk-ingests CSV files into a sketch store: every
// non-key column of every file gets a candidate sketch persisted under
// "file#column@key". Files fan out across a worker pool, and each column
// is sketched in one streaming pass (StreamBuilder), which avoids the
// per-column aggregate-table materialization of the batch path. (Each
// CSV is still loaded as a table once per file; up to -workers tables
// are resident at a time.) Exits non-zero if any store write failed;
// unreadable files and files without the key column are skipped with a
// warning, as before.
func runStoreIngest(args []string) {
	fs := flag.NewFlagSet("store ingest", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	key := fs.String("key", "", "join-key column name (must exist in each file)")
	size := fs.Int("sketch", misketch.DefaultSketchSize, "sketch size n")
	agg := fs.String("agg", "first", "aggregation for repeated keys")
	seed := fs.Uint("seed", 0, "hash seed (0 = default)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel ingestion workers")
	shards := fs.Int("shards", 0, "legacy directory fan-out (ignored: sketches are packed into segments)")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir, "key": *key})
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "store ingest: at least one CSV file or directory required")
		os.Exit(2)
	}
	paths := expandCSVArgs(fs.Args())
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "store ingest: no CSV files found")
		os.Exit(1)
	}
	// Sketch names are derived from the file basename, so two files with
	// the same basename would silently overwrite each other's sketches —
	// refuse up front rather than lose data nondeterministically.
	byBase := make(map[string]string, len(paths))
	for _, p := range paths {
		base := filepath.Base(p)
		if prev, dup := byBase[base]; dup {
			fmt.Fprintf(os.Stderr, "store ingest: %s and %s would both store sketches under %q; rename one or ingest them into separate stores\n", prev, p, base)
			os.Exit(2)
		}
		byBase[base] = p
	}
	st, err := misketch.OpenStoreWithOptions(*storeDir, misketch.OpenStoreOptions{Shards: *shards})
	die(err)
	opt := misketch.Options{Size: *size, Seed: uint32(*seed)}

	if *workers < 1 {
		*workers = 1
	}
	jobs := make(chan string)
	var total, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range jobs {
				n, skip, err := ingestFile(st, path, *key, opt, misketch.AggFunc(*agg))
				total.Add(int64(n)) // count partial progress before a failure too
				switch {
				case err != nil:
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "%s: %v (%d sketches already ingested)\n", path, err, n)
				case skip != nil:
					fmt.Fprintf(os.Stderr, "skipping %s: %v\n", path, skip)
				}
			}
		}()
	}
	for _, p := range paths {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	die(st.Close()) // persist the manifest for what did succeed
	fmt.Printf("ingested %d sketches from %d files into %s\n", total.Load(), len(paths), *storeDir)
	if n := failed.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "store ingest: %d file(s) failed\n", n)
		os.Exit(1)
	}
}

// expandCSVArgs turns a mix of CSV paths and directories into a sorted,
// deduplicated list of CSV files (directories contribute their *.csv
// entries; naming a file both directly and via its directory is fine).
func expandCSVArgs(args []string) []string {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		p = filepath.Clean(p)
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, a := range args {
		if fi, err := os.Stat(a); err == nil && fi.IsDir() {
			matches, err := filepath.Glob(filepath.Join(a, "*.csv"))
			die(err)
			for _, m := range matches {
				add(m)
			}
			continue
		}
		add(a)
	}
	sort.Strings(paths)
	return paths
}

// ingestFile sketches every non-key column of one CSV through a
// streaming builder and stores the results. It returns the number of
// sketches ingested, a benign skip reason (unreadable file, missing key
// column), and a store-write error — only the latter should fail the
// run.
func ingestFile(st *misketch.Store, path, key string, opt misketch.Options, agg misketch.AggFunc) (n int, skip, err error) {
	tb, err := misketch.ReadCSVFile(path)
	if err != nil {
		return 0, err, nil
	}
	if tb.Column(key) == nil {
		return 0, fmt.Errorf("no column %q", key), nil
	}
	for _, col := range tb.Columns() {
		if col.Name == key {
			continue
		}
		o := opt
		o.Agg = pickAgg(agg, col)
		sk, err := misketch.BuildStreaming(tb, key, col.Name, misketch.RoleCandidate, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s#%s: %v\n", path, col.Name, err)
			continue
		}
		name := fmt.Sprintf("%s#%s@%s", filepath.Base(path), col.Name, key)
		if err := st.Put(name, sk); err != nil {
			return n, nil, err
		}
		n++
	}
	return n, nil, nil
}

// runStoreRank answers a discovery query against a sketch store. The
// ranking is top-K bounded and cancellable with Ctrl-C. With -trains, a
// comma-separated list of target columns is swept as one batch: every
// target becomes a train sketch over the same join key and the store is
// walked once (Store.RankBatch), with the key-overlap prefilter pruning
// (target, candidate) pairs whose join provably fails the min-join bar.
func runStoreRank(args []string) {
	fs := flag.NewFlagSet("store rank", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	train, trainKey, target, size, _, seed := commonFlags(fs)
	trains := fs.String("trains", "", "comma-separated target columns to sweep as one batch (overrides -target)")
	minJoin := fs.Int("min-join", 100, "drop candidates whose sketch join has at most this many samples")
	top := fs.Int("top", 20, "return only the top-K candidates")
	prefix := fs.String("prefix", "", "only rank stored sketches whose name has this prefix")
	workers := fs.Int("workers", 0, "estimation worker fan-out (0 = automatic)")
	noCascade := fs.Bool("no-cascade", false, "disable the two-tier estimator cascade (exact tier on every pair)")
	cascadeMargin := fs.Float64("cascade-margin", 0, "override the cascade safety margin in nats (0 = calibrated default)")
	stats := fs.Bool("stats", false, "print cache, disk-read, and cascade counters after the query")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir, "train": *train, "train-key": *trainKey})
	targets := []string{*target}
	if *trains != "" {
		targets = nil
		for _, col := range strings.Split(*trains, ",") {
			if col = strings.TrimSpace(col); col != "" {
				targets = append(targets, col)
			}
		}
	}
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "") {
		fmt.Fprintln(os.Stderr, "missing required flag -target (or -trains)")
		os.Exit(2)
	}

	tb, err := misketch.ReadCSVFile(*train)
	die(err)
	trainSks := make([]*misketch.Sketch, len(targets))
	for i, col := range targets {
		sk, err := misketch.SketchTrain(tb, *trainKey, col, misketch.Options{
			Size: *size, Seed: uint32(*seed),
		})
		die(err)
		trainSks[i] = sk
	}
	sketches, err := misketch.OpenStore(*storeDir)
	die(err)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	started := time.Now()
	res, err := misketch.RankBatch(ctx, sketches, trainSks, misketch.BatchRankOptions{
		Prefix:        *prefix,
		MinJoinSize:   *minJoin,
		K:             misketch.DefaultK,
		TopK:          *top,
		Workers:       *workers,
		NoCascade:     *noCascade,
		CascadeMargin: *cascadeMargin,
	})
	die(err)
	elapsed := time.Since(started)
	for q, col := range targets {
		if len(targets) > 1 {
			fmt.Printf("== target %s (%d candidates pruned by key-overlap prefilter)\n",
				col, res.Queries[q].Pruned)
		}
		fmt.Printf("%-44s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
		for _, r := range res.Queries[q].Ranked {
			fmt.Printf("%-44s %10.4f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
		}
	}
	if len(res.Skipped) > 0 {
		fmt.Printf("(%d sketches skipped: incompatible seed or role)\n", len(res.Skipped))
	}
	ss := sketches.Stats()
	fmt.Printf("(%d sketches indexed, %d read from disk)\n", ss.Sketches, ss.DiskReads)
	if *stats {
		fmt.Printf("query time:   %s (%d targets in one pass)\n", elapsed, len(targets))
		fmt.Printf("prefilter:    %d (target, candidate) pairs pruned\n", ss.PrunedPairs)
		fmt.Printf("cascade:      %d pairs settled by the cheap tier, %d paid the exact tier, %d margin/guard rescues\n",
			ss.CascadeCheapOnly, ss.CascadeExact, ss.CascadeMarginRescues)
		fmt.Printf("cache:        %d hits, %d misses, %d evictions, %d bytes resident\n",
			ss.CacheHits, ss.CacheMisses, ss.Evictions, ss.CacheBytes)
		fmt.Printf("disk reads:   %d full sketch decodes\n", ss.DiskReads)
		fmt.Printf("workers:      %d (0 = GOMAXPROCS %d)\n", *workers, runtime.GOMAXPROCS(0))
	}
}

// runStoreLs lists the manifest of a sketch store without reading any
// sketch bodies; -segments adds the segment files backing them.
func runStoreLs(args []string) {
	fs := flag.NewFlagSet("store ls", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	segments := fs.Bool("segments", false, "also list the segment files and their live/dead byte split")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir})
	st, err := misketch.OpenStore(*storeDir)
	die(err)
	metas := st.Metas()
	fmt.Printf("%-44s %-6s %-9s %8s %10s %10s %8s\n", "name", "method", "role", "entries", "rows", "bytes", "segment")
	for _, m := range metas {
		role := "cand"
		if m.Role == misketch.RoleTrain {
			role = "train"
		}
		kind := "str"
		if m.Numeric {
			kind = "num"
		}
		fmt.Printf("%-44s %-6s %-9s %8d %10d %10d %8d\n",
			m.Name, fmt.Sprintf("%s/%s", m.Method, kind), role, m.Entries, m.SourceRows, m.Bytes, m.Segment)
	}
	fmt.Printf("(%d sketches)\n", len(metas))
	if *segments {
		fmt.Printf("\n%-12s %-10s %-7s %10s %10s %8s %8s %10s %8s %11s %10s %10s %6s\n",
			"segment", "kind", "state", "bytes", "live-bytes", "records", "live", "dead-bytes", "indexed", "index-bytes", "comp-bytes", "raw-bytes", "ratio")
		for _, info := range st.Segments() {
			kind, state, indexed := "append", "active", "no"
			if info.Compacted {
				kind = "compacted"
			}
			if info.Sealed {
				state = "sealed"
			}
			if info.Indexed {
				indexed = "yes"
			}
			ratio := "-"
			if info.Compressed && info.CompressedBytes > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(info.RawBytes)/float64(info.CompressedBytes))
			}
			fmt.Printf("%-12d %-10s %-7s %10d %10d %8d %8d %10d %8s %11d %10d %10d %6s\n",
				info.Seq, kind, state, info.Bytes, info.LiveBytes, info.Records, info.LiveRecords, info.Bytes-info.LiveBytes, indexed, info.IndexBytes,
				info.CompressedBytes, info.RawBytes, ratio)
		}
	}
}

// runStoreCompact folds the store's segments down to their live
// records: overwritten sketch versions and delete tombstones are
// reclaimed, and the survivors land in one fresh compacted segment.
// -compress makes the pass write an FSST-compressed segment — on an
// existing raw store it is the one-shot compression backfill (the pass
// runs even with nothing to reclaim).
func runStoreCompact(args []string) {
	fs := flag.NewFlagSet("store compact", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	compress := fs.Bool("compress", false, "write FSST-compressed output segments (backfills raw segments)")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir})
	st, err := misketch.OpenStoreWithOptions(*storeDir, misketch.OpenStoreOptions{Compression: *compress})
	die(err)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cs, err := st.Compact(ctx)
	if err != nil {
		st.Close()
		die(err)
	}
	ss := st.Stats()
	die(st.Close())
	if !cs.Compacted {
		fmt.Printf("nothing to compact: %d segment(s), %d live records, no dead bytes\n",
			cs.SegmentsBefore, cs.Records)
		return
	}
	fmt.Printf("compacted %d segment(s) (%d bytes) into 1 (%d bytes): %d live records kept, %d bytes reclaimed\n",
		cs.SegmentsBefore, cs.BytesBefore, cs.BytesAfter, cs.Records, cs.Reclaimed)
	if *compress && ss.CompressedBytes > 0 {
		fmt.Printf("compressed: %d record bytes (raw equivalent %d, %.2fx)\n",
			ss.CompressedBytes, ss.RawBytes, float64(ss.RawBytes)/float64(ss.CompressedBytes))
	}
}

// runStoreIndex backfills per-segment key indexes: segments written
// before the inverted index existed (or whose index emission was torn
// by a crash) are folded through a forced compaction pass, whose output
// always carries an index. Already-indexed stores are a no-op.
func runStoreIndex(args []string) {
	fs := flag.NewFlagSet("store index", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir})
	st, err := misketch.OpenStore(*storeDir)
	die(err)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cs, err := st.IndexSegments(ctx)
	if err != nil {
		st.Close()
		die(err)
	}
	ss := st.Stats()
	die(st.Close())
	if !cs.Compacted {
		fmt.Printf("nothing to index: %d/%d sealed segment(s) already indexed (%d posting bytes)\n",
			ss.IndexedSegments, ss.Segments, ss.PostingBytes)
		return
	}
	fmt.Printf("indexed %d segment(s) into 1: %d records, %d/%d segment(s) now indexed, %d posting bytes\n",
		cs.SegmentsBefore, cs.Records, ss.IndexedSegments, ss.Segments, ss.PostingBytes)
}

// runBench builds a synthetic sketch store mirroring the repo's
// BenchmarkStoreRank workload (a heterogeneous discovery corpus: a
// planted cohort of dependent candidates at graded noise scales,
// marginal stragglers near the cascade's decision boundary, and an
// independent bulk — 400 keys each, against a 256-entry train sketch
// over 4000 rows), times warm top-K ranking queries against it, and
// emits one BENCH_rank.json record — the store-rank perf number,
// measurable without the Go test harness. -cpuprofile/-memprofile
// write pprof profiles of the timed loop for tier-level attribution.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	nCand := fs.Int("candidates", 1000, "number of candidate sketches")
	top := fs.Int("top", 10, "top-K bound of the timed queries")
	iters := fs.Int("iters", 5, "timed query iterations (after one warm-up)")
	noCascade := fs.Bool("no-cascade", false, "time the exact tier on every pair (cascade disabled)")
	out := fs.String("out", "", "append the JSON record to this file (default: stdout only)")
	dir := fs.String("dir", "", "store directory (default: a temp dir, removed afterwards)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the timed queries to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the timed queries to this file")
	shardIndex := fs.Int("shard-index", 0, "with -shard-count, keep only candidates c where c%%count == index")
	shardCount := fs.Int("shard-count", 1, "build shard I of N disjoint stores (N runs with the same -candidates cover the full corpus)")
	die(fs.Parse(args))
	if *iters < 1 || *nCand < 1 {
		fmt.Fprintln(os.Stderr, "bench: -iters and -candidates must be positive")
		os.Exit(2)
	}
	if *shardCount < 1 || *shardIndex < 0 || *shardIndex >= *shardCount {
		fmt.Fprintln(os.Stderr, "bench: -shard-index must be in [0, -shard-count)")
		os.Exit(2)
	}

	storeDir := *dir
	if storeDir == "" {
		tmp, err := os.MkdirTemp("", "misketch-bench-*")
		die(err)
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	st, err := misketch.OpenStore(storeDir)
	die(err)
	rng := rand.New(rand.NewSource(17))
	sopt := misketch.Options{Size: 256}
	signal := func(g int) float64 { return float64(g % 20) }
	tb, err := misketch.NewStreamBuilder(misketch.RoleTrain, true, sopt)
	die(err)
	for i := 0; i < 4000; i++ {
		g := rng.Intn(400)
		tb.AddNum(fmt.Sprintf("g%d", g), signal(g)+0.25*rng.NormFloat64())
	}
	train := tb.Sketch()
	for c := 0; c < *nCand; c++ {
		cb, err := misketch.NewStreamBuilder(misketch.RoleCandidate, true, sopt)
		die(err)
		for g := 0; g < 400; g++ {
			var v float64
			switch {
			case c%64 == 0:
				v = signal(g) + (0.08+0.035*float64(c/64))*rng.NormFloat64()
			case c%64 == 1:
				v = signal(g) + (1.0+float64(c/64))*rng.NormFloat64()
			default:
				v = rng.NormFloat64()
			}
			cb.AddNum(fmt.Sprintf("g%d", g), v)
		}
		// Sharded builds generate every candidate (the rng stream must
		// not diverge between shards) but store only this shard's slice,
		// so N runs produce disjoint stores whose union is the full
		// single-node corpus.
		if c%*shardCount != *shardIndex {
			continue
		}
		die(st.Put(fmt.Sprintf("bench/t%04d#x", c), cb.Sketch()))
	}
	die(st.Flush())

	ctx := context.Background()
	query := func() time.Duration {
		start := time.Now()
		ranked, _, err := st.RankQuery(ctx, train, misketch.RankOptions{
			Prefix: "bench/", MinJoinSize: 50, K: misketch.DefaultK, TopK: *top,
			NoCascade: *noCascade,
		})
		die(err)
		if len(ranked) == 0 {
			die(fmt.Errorf("bench: empty ranking"))
		}
		return time.Since(start)
	}
	query() // warm the cache
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer func() { die(f.Close()) }()
		defer pprof.StopCPUProfile()
	}
	pre := st.Stats()
	best, total := time.Duration(1<<62), time.Duration(0)
	for i := 0; i < *iters; i++ {
		d := query()
		total += d
		if d < best {
			best = d
		}
	}
	post := st.Stats()
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		die(err)
		runtime.GC()
		die(pprof.WriteHeapProfile(f))
		die(f.Close())
	}
	// The record mirrors the committed BENCH_rank.json rows (same
	// "bench" naming as the Go benchmark) so appended runs stay
	// queryable alongside the per-PR baseline/after entries.
	rec := map[string]any{
		"stage":         "run",
		"bench":         fmt.Sprintf("BenchmarkStoreRank/top%d", *top),
		"candidates":    *nCand,
		"iters":         *iters,
		"ns_per_op":     total.Nanoseconds() / int64(*iters),
		"best_ns":       best.Nanoseconds(),
		"cascade":       !*noCascade,
		"cascade_cheap": (post.CascadeCheapOnly - pre.CascadeCheapOnly) / int64(*iters),
		"cascade_exact": (post.CascadeExact - pre.CascadeExact) / int64(*iters),
		"gomaxprocs":    runtime.GOMAXPROCS(0),
		"date":          time.Now().UTC().Format("2006-01-02"),
	}
	line, err := json.Marshal(rec)
	die(err)
	fmt.Println(string(line))
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		die(err)
		_, werr := f.Write(append(line, '\n'))
		die(errors.Join(werr, f.Close()))
	}
}

// runServe runs the long-running discovery service over a sketch store:
// one open store, a compiled-probe cache, and pooled estimator scratch
// shared across requests, with the total rank-worker fan-out bounded by
// -max-workers. With -coordinator it instead fronts a set of shard
// replicas, scattering each rank query to all of them and merging the
// per-shard top-K heaps. Ctrl-C (or SIGTERM) drains in-flight requests
// (and, store mode, persists the manifest) before exiting.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	addr := fs.String("addr", ":8080", "listen address")
	maxWorkers := fs.Int("max-workers", 0, "total rank-worker bound across requests (0 = GOMAXPROCS)")
	probeCache := fs.Int("probe-cache", 0, "compiled train-probe cache entries (0 = default, negative disables)")
	cacheBytes := fs.Int64("cache", 0, "decoded-sketch cache bytes (0 = default, negative disables)")
	resultCache := fs.Int64("result-cache-bytes", 64<<20, "generation-fenced rank result cache bytes (0 disables; both modes)")
	backend := fs.String("backend", "fs", "storage backend: fs (segments+mmap) or mem (diskless)")
	compactEvery := fs.Duration("compact-every", 0, "background compaction check interval (0 disables)")
	segmentBytes := fs.Int64("segment-bytes", 0, "segment roll threshold in bytes (0 = default 128 MiB)")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof profiling handlers (trusted networks only)")
	coordinator := fs.Bool("coordinator", false, "coordinate rank queries across -shards instead of serving a store")
	shards := fs.String("shards", "", "comma-separated shard base URLs (coordinator mode)")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-attempt shard request bound (0 = default 2m, negative disables)")
	shardConnect := fs.Duration("shard-connect-timeout", 0, "shard dial bound (0 = default 5s, negative disables)")
	shardRetries := fs.Int("shard-retries", 0, "transient-failure retries per shard request (0 = default 2, negative disables)")
	die(fs.Parse(args))

	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*shards, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		co, err := misketch.OpenCluster(urls, misketch.ClusterOptions{
			ConnectTimeout:   *shardConnect,
			RequestTimeout:   *shardTimeout,
			Retries:          *shardRetries,
			ResultCacheBytes: *resultCache,
		})
		die(err)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Printf("misketch serve: coordinating %d shards, listening on %s\n", len(urls), *addr)
		die(co.ListenAndServe(ctx, *addr))
		fmt.Println("misketch serve: coordinator drained, bye")
		return
	}
	if *backend != misketch.BackendMem {
		requireFlags(map[string]string{"store": *storeDir})
	}

	st, err := misketch.OpenStoreWithOptions(*storeDir, misketch.OpenStoreOptions{
		CacheBytes:   *cacheBytes,
		Backend:      *backend,
		SegmentBytes: *segmentBytes,
		CompactEvery: *compactEvery,
	})
	die(err)
	n, err := st.Len()
	die(err)
	srv := misketch.NewServer(st, misketch.ServerOptions{
		MaxWorkers:       *maxWorkers,
		ProbeCache:       *probeCache,
		EnablePprof:      *pprofFlag,
		ResultCacheBytes: *resultCache,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("misketch serve: %d sketches in %s, listening on %s\n", n, *storeDir, *addr)
	die(srv.ListenAndServe(ctx, *addr))
	fmt.Println("misketch serve: drained and persisted, bye")
}

// runStoreRebuild re-derives a store's manifest from the sketch files on
// disk via header-only reads — repair after manifest loss or corruption.
func runStoreRebuild(args []string) {
	fs := flag.NewFlagSet("store rebuild", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir})
	st, err := misketch.OpenStore(*storeDir)
	die(err)
	die(st.RebuildManifest())
	n, err := st.Len()
	die(err)
	fmt.Printf("rebuilt manifest: %d sketches indexed in %s\n", n, *storeDir)
}
