// Command misketch estimates mutual information between columns of CSV
// tables across a (virtual) join, using the TUPSK sketches from the
// paper. It supports one-shot estimation between two tables and ranking
// a directory of candidate tables against a base table.
//
// Estimate MI between taxi.csv#num_trips and weather.csv#temp joined on
// their date columns, without materializing the join:
//
//	misketch estimate -train taxi.csv -train-key date -target num_trips \
//	                  -cand weather.csv -cand-key date -feature temp -agg avg
//
// Rank every column of every CSV file in ./candidates/ by estimated MI
// with the target:
//
//	misketch rank -train taxi.csv -train-key date -target num_trips ./candidates
//
// Compare the sketch estimate against the exact full-join computation:
//
//	misketch estimate -full ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"misketch"
	"misketch/internal/table"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "estimate":
		runEstimate(os.Args[2:])
	case "rank":
		runRank(os.Args[2:])
	case "sketch":
		runSketch(os.Args[2:])
	case "store-rank":
		runStoreRank(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  misketch estimate   -train FILE -train-key COL -target COL -cand FILE -cand-key COL -feature COL [flags]
  misketch rank       -train FILE -train-key COL -target COL [flags] CANDIDATE_DIR
  misketch sketch     -store DIR -key COL [flags] CSV_FILE...        (ingest: sketch every column)
  misketch store-rank -store DIR -train FILE -train-key COL -target COL [flags]`)
}

// commonFlags registers the flags shared by both subcommands.
func commonFlags(fs *flag.FlagSet) (train, trainKey, target *string, size *int, agg *string, seed *uint) {
	train = fs.String("train", "", "base table CSV file")
	trainKey = fs.String("train-key", "", "join-key column of the base table")
	target = fs.String("target", "", "target column of the base table")
	size = fs.Int("sketch", misketch.DefaultSketchSize, "sketch size n")
	agg = fs.String("agg", "first", "aggregation for repeated candidate keys: avg|sum|count|min|max|mode|first|median")
	seed = fs.Uint("seed", 0, "hash seed (0 = default); both sketches must share it")
	return
}

func buildTrainSketch(train, trainKey, target string, size int, seed uint) *misketch.Sketch {
	tb, err := misketch.ReadCSVFile(train)
	die(err)
	s, err := misketch.SketchTrain(tb, trainKey, target, misketch.Options{
		Size: size, Seed: uint32(seed),
	})
	die(err)
	return s
}

func runEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	train, trainKey, target, size, agg, seed := commonFlags(fs)
	cand := fs.String("cand", "", "candidate table CSV file")
	candKey := fs.String("cand-key", "", "join-key column of the candidate table")
	feature := fs.String("feature", "", "feature column of the candidate table")
	full := fs.Bool("full", false, "also compute the exact full-join MI for comparison")
	ci := fs.Bool("ci", false, "attach a 95% subsampling confidence interval to the sketch estimate")
	die(fs.Parse(args))
	requireFlags(map[string]string{
		"train": *train, "train-key": *trainKey, "target": *target,
		"cand": *cand, "cand-key": *candKey, "feature": *feature,
	})

	st := buildTrainSketch(*train, *trainKey, *target, *size, *seed)
	candTable, err := misketch.ReadCSVFile(*cand)
	die(err)
	sc, err := misketch.SketchCandidate(candTable, *candKey, *feature, misketch.Options{
		Size: *size, Seed: uint32(*seed), Agg: misketch.AggFunc(*agg),
	})
	die(err)
	res, err := misketch.EstimateMI(st, sc)
	die(err)
	fmt.Printf("sketch MI estimate: %.4f nats (estimator %s, sketch join size %d)\n",
		res.MI, res.Estimator, res.N)
	if *ci {
		_, interval, err := misketch.EstimateMIWithCI(st, sc, 100, 0.95, 1)
		die(err)
		fmt.Printf("95%% confidence:     [%.4f, %.4f]\n", interval.Lo, interval.Hi)
	}
	if *full {
		trainTable, err := misketch.ReadCSVFile(*train)
		die(err)
		fr, err := misketch.FullJoinMI(trainTable, *trainKey, *target,
			candTable, *candKey, *feature, misketch.AggFunc(*agg))
		die(err)
		fmt.Printf("full-join MI:       %.4f nats (estimator %s, join size %d)\n",
			fr.MI, fr.Estimator, fr.N)
	}
}

func runRank(args []string) {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	train, trainKey, target, size, agg, seed := commonFlags(fs)
	candKey := fs.String("cand-key", "", "join-key column of candidates (default: same name as -train-key)")
	minJoin := fs.Int("min-join", 100, "drop candidates whose sketch join has at most this many samples")
	top := fs.Int("top", 20, "show the top-K candidates")
	die(fs.Parse(args))
	requireFlags(map[string]string{"train": *train, "train-key": *trainKey, "target": *target})
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "rank: exactly one candidate directory required")
		os.Exit(2)
	}
	dir := fs.Arg(0)
	key := *candKey
	if key == "" {
		key = *trainKey
	}

	st := buildTrainSketch(*train, *trainKey, *target, *size, *seed)

	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	die(err)
	sort.Strings(paths)
	var cands []misketch.Candidate
	for _, p := range paths {
		tb, err := misketch.ReadCSVFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", p, err)
			continue
		}
		if tb.Column(key) == nil {
			continue // not joinable on this key
		}
		for _, col := range tb.Columns() {
			if col.Name == key {
				continue
			}
			s, err := misketch.SketchCandidate(tb, key, col.Name, misketch.Options{
				Size: *size, Seed: uint32(*seed), Agg: pickAgg(misketch.AggFunc(*agg), col),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "skipping %s#%s: %v\n", p, col.Name, err)
				continue
			}
			cands = append(cands, misketch.Candidate{
				Name:   fmt.Sprintf("%s#%s", filepath.Base(p), col.Name),
				Sketch: s,
			})
		}
	}
	if len(cands) == 0 {
		fmt.Fprintf(os.Stderr, "no joinable candidate columns found in %s (key %q)\n", dir, key)
		os.Exit(1)
	}
	ranked, err := misketch.Rank(st, cands, *minJoin)
	die(err)
	fmt.Printf("%-40s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("%-40s %10.4f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
	}
	fmt.Printf("(%d candidates evaluated, %d passed the min-join filter; rank within one estimator family)\n",
		len(cands), len(ranked))
}

// pickAgg falls back to MODE for string columns when the requested
// aggregate needs numeric input.
func pickAgg(requested misketch.AggFunc, col *misketch.Column) misketch.AggFunc {
	if _, ok := requested.OutputKind(col.Kind); ok {
		return requested
	}
	if col.Kind == table.KindString {
		return misketch.AggMode
	}
	return misketch.AggFirst
}

func requireFlags(vals map[string]string) {
	for name, v := range vals {
		if v == "" {
			fmt.Fprintf(os.Stderr, "missing required flag -%s\n", name)
			os.Exit(2)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "misketch:", err)
		os.Exit(1)
	}
}

// runSketch ingests CSV files into a sketch store: every non-key column
// of every file gets a candidate sketch persisted under "file#column".
func runSketch(args []string) {
	fs := flag.NewFlagSet("sketch", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	key := fs.String("key", "", "join-key column name (must exist in each file)")
	size := fs.Int("sketch", misketch.DefaultSketchSize, "sketch size n")
	agg := fs.String("agg", "first", "aggregation for repeated keys")
	seed := fs.Uint("seed", 0, "hash seed (0 = default)")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir, "key": *key})
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "sketch: at least one CSV file required")
		os.Exit(2)
	}
	st, err := misketch.OpenStore(*storeDir)
	die(err)
	total := 0
	for _, path := range fs.Args() {
		tb, err := misketch.ReadCSVFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", path, err)
			continue
		}
		if tb.Column(*key) == nil {
			fmt.Fprintf(os.Stderr, "skipping %s: no column %q\n", path, *key)
			continue
		}
		for _, col := range tb.Columns() {
			if col.Name == *key {
				continue
			}
			sk, err := misketch.SketchCandidate(tb, *key, col.Name, misketch.Options{
				Size: *size, Seed: uint32(*seed),
				Agg: pickAgg(misketch.AggFunc(*agg), col),
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "skipping %s#%s: %v\n", path, col.Name, err)
				continue
			}
			name := fmt.Sprintf("%s#%s@%s", filepath.Base(path), col.Name, *key)
			die(st.Put(name, sk))
			total++
		}
	}
	fmt.Printf("ingested %d sketches into %s\n", total, *storeDir)
}

// runStoreRank answers a discovery query against a sketch store.
func runStoreRank(args []string) {
	fs := flag.NewFlagSet("store-rank", flag.ExitOnError)
	storeDir := fs.String("store", "", "sketch store directory")
	train, trainKey, target, size, _, seed := commonFlags(fs)
	minJoin := fs.Int("min-join", 100, "drop candidates whose sketch join has at most this many samples")
	top := fs.Int("top", 20, "show the top-K candidates")
	prefix := fs.String("prefix", "", "only rank stored sketches whose name has this prefix")
	die(fs.Parse(args))
	requireFlags(map[string]string{"store": *storeDir, "train": *train, "train-key": *trainKey, "target": *target})

	st := buildTrainSketch(*train, *trainKey, *target, *size, *seed)
	sketches, err := misketch.OpenStore(*storeDir)
	die(err)
	ranked, skipped, err := sketches.Rank(st, *prefix, *minJoin, misketch.DefaultK)
	die(err)
	fmt.Printf("%-44s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("%-44s %10.4f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
	}
	if len(skipped) > 0 {
		fmt.Printf("(%d sketches skipped: incompatible seed or role)\n", len(skipped))
	}
}
