package main

// misketch loadtest: sustained concurrent rank traffic against a
// running discovery service — a single node or a cluster coordinator
// (the two speak the same protocol, so -url is all that differs).
// Workers post /v1/rank queries in a closed loop until the deadline;
// the report is QPS, latency percentiles, and the error/partial counts
// that matter when shards are being killed under the test.
//
// The workload is configurable rather than a single repeated query:
// -queries builds N distinct prefix/top-K variants, -zipf skews which
// variant each request draws (hot-key traffic, the shape result caches
// live or die on), and -mutate-every issues background Puts so cache
// invalidation is exercised under load. The record reports the
// server's result-cache hit and coalesce rates over the measured
// window, sampled from /v1/stats before and after.
//
// The JSON record appends to the same BENCH file the bench command
// writes, so single-node and cluster throughput sit side by side.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"misketch"
)

func runLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	target := fs.String("url", "", "base URL of the service under test (node or coordinator)")
	duration := fs.Duration("duration", 10*time.Second, "how long to sustain traffic")
	concurrency := fs.Int("concurrency", 8, "concurrent closed-loop workers")
	top := fs.Int("top", 10, "top-K bound of each query")
	minJoin := fs.Int("min-join", 50, "min join size of each query")
	prefix := fs.String("prefix", "bench/", "candidate name prefix of each query")
	sketchFile := fs.String("sketch", "", "saved train sketch to query with (default: a synthetic bench-shaped train)")
	queries := fs.Int("queries", 1, "number of distinct query variants (prefix/top-K combinations)")
	zipf := fs.Float64("zipf", 0, "zipf skew exponent for variant selection (> 1; 0 = uniform)")
	mutateEvery := fs.Duration("mutate-every", 0, "interval between background Puts during the run (0 = none)")
	mutateURL := fs.String("mutate-url", "", "base URL for background Puts (default: -url; a coordinator does not proxy /v1/put, so point this at a shard)")
	label := fs.String("label", "", "label recorded in the JSON record's bench name")
	out := fs.String("out", "", "append the JSON record to this file (default: stdout only)")
	die(fs.Parse(args))
	requireFlags(map[string]string{"url": *target})
	if *concurrency < 1 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -concurrency and -duration must be positive")
		os.Exit(2)
	}
	if *queries < 1 {
		fmt.Fprintln(os.Stderr, "loadtest: -queries must be at least 1")
		os.Exit(2)
	}
	if *zipf != 0 && *zipf <= 1 {
		fmt.Fprintln(os.Stderr, "loadtest: -zipf must be greater than 1 (or 0 for uniform)")
		os.Exit(2)
	}

	train, err := loadtestTrain(*sketchFile)
	die(err)
	var buf bytes.Buffer
	die(misketch.WriteSketch(&buf, train))
	bodies, err := loadtestBodies(buf.Bytes(), *prefix, *minJoin, *top, *queries)
	die(err)

	// One probe request before the clock starts: fail fast on a dead
	// target or a bad query, and warm the server's probe cache so the
	// measured window is steady-state.
	if _, _, err := loadtestQuery(*target, bodies[0]); err != nil {
		die(fmt.Errorf("loadtest: probe query failed: %w", err))
	}
	// Snapshot result-cache counters after the probe, before the clock,
	// so the reported hit/coalesce rates cover exactly the measured
	// window. A target without the counters just drops those fields.
	before, statsOK := loadtestStats(*target)

	var mutations atomic.Int64
	stopMutator := startMutator(*mutateEvery, *mutateURL, *target, *prefix, &mutations)

	type workerResult struct {
		latencies []time.Duration
		errors    int
		partial   int
		lastErr   error
	}
	results := make([]workerResult, *concurrency)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			pick := variantPicker(int64(w), *zipf, len(bodies))
			for time.Now().Before(deadline) {
				qStart := time.Now()
				partial, _, err := loadtestQuery(*target, bodies[pick()])
				if err != nil {
					r.errors++
					r.lastErr = err
					continue
				}
				r.latencies = append(r.latencies, time.Since(qStart))
				if partial {
					r.partial++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)
	stopMutator()

	var latencies []time.Duration
	nErr, nPartial := 0, 0
	var lastErr error
	for _, r := range results {
		latencies = append(latencies, r.latencies...)
		nErr += r.errors
		nPartial += r.partial
		if r.lastErr != nil {
			lastErr = r.lastErr
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	qps := float64(len(latencies)) / elapsed.Seconds()

	name := "LoadtestRank"
	if *label != "" {
		name += "/" + *label
	}
	rec := map[string]any{
		"stage":       "loadtest",
		"bench":       name,
		"url":         *target,
		"concurrency": *concurrency,
		"duration_ns": elapsed.Nanoseconds(),
		"requests":    len(latencies),
		"errors":      nErr,
		"partial":     nPartial,
		"qps":         math2(qps),
		"p50_ns":      pct(0.50).Nanoseconds(),
		"p90_ns":      pct(0.90).Nanoseconds(),
		"p99_ns":      pct(0.99).Nanoseconds(),
		"top":         *top,
		"queries":     *queries,
		"zipf":        *zipf,
		"mutations":   mutations.Load(),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"date":        time.Now().UTC().Format("2006-01-02"),
	}
	if statsOK {
		if after, ok := loadtestStats(*target); ok && len(latencies) > 0 {
			hits := after["result_hits"] - before["result_hits"] +
				after["result_merged_hits"] - before["result_merged_hits"]
			coalesced := after["result_coalesced"] - before["result_coalesced"]
			shardHits := after["result_shard_hits"] - before["result_shard_hits"]
			n := float64(len(latencies))
			rec["result_hits"] = hits
			rec["result_coalesced"] = coalesced
			rec["result_shard_hits"] = shardHits
			rec["hit_rate"] = math2(float64(hits) / n)
			rec["coalesce_rate"] = math2(float64(coalesced) / n)
		}
	}
	line, err := json.Marshal(rec)
	die(err)
	fmt.Println(string(line))
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		die(err)
		_, werr := f.Write(append(line, '\n'))
		die(errors.Join(werr, f.Close()))
	}
	if nErr > 0 {
		die(fmt.Errorf("loadtest: %d of %d requests failed (last: %v)", nErr, nErr+len(latencies), lastErr))
	}
}

// math2 rounds to two decimals so QPS records stay readable.
func math2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// loadtestBodies builds the distinct query variants. Variant i keeps
// the shared prefix and train but walks top through 1..top and bumps
// min-join once per full top cycle, so every variant canonicalizes to
// a distinct cache key while staying answerable by the same corpus.
func loadtestBodies(sketch []byte, prefix string, minJoin, top, queries int) ([][]byte, error) {
	b64 := base64.StdEncoding.EncodeToString(sketch)
	maxTop := top
	if maxTop < 1 {
		maxTop = 1
	}
	bodies := make([][]byte, 0, queries)
	for i := 0; i < queries; i++ {
		vTop := top
		vMin := minJoin
		if i > 0 {
			vTop = (i % maxTop) + 1
			vMin = minJoin + i/maxTop
		}
		mj := vMin
		body, err := json.Marshal(misketch.RankRequest{
			Sketch:  b64,
			Prefix:  prefix,
			MinJoin: &mj,
			Top:     vTop,
		})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// variantPicker returns this worker's draw function over the variant
// set: zipf-skewed when an exponent is set (rank 0 hottest — the
// traffic shape that separates a result cache from a benchmark toy),
// uniform otherwise.
func variantPicker(seed int64, s float64, n int) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	rng := rand.New(rand.NewSource(seed*2654435761 + 1))
	if s > 1 {
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(n) }
}

// startMutator begins background Puts every interval so cache
// invalidation runs under live traffic, and returns a stop function.
// The sketch lands under the queried prefix, so each Put both bumps
// the store generation and genuinely changes the candidate set.
func startMutator(every time.Duration, mutateURL, target, prefix string, count *atomic.Int64) func() {
	if every <= 0 {
		return func() {}
	}
	if mutateURL == "" {
		mutateURL = target
	}
	cb, err := misketch.NewStreamBuilder(misketch.RoleCandidate, true, misketch.Options{Size: 64})
	die(err)
	for g := 0; g < 90; g++ {
		cb.AddNum(fmt.Sprintf("g%d", g), float64(g%7))
	}
	var buf bytes.Buffer
	die(misketch.WriteSketch(&buf, cb.Sketch()))
	payload := buf.Bytes()
	name := prefix + "zz-loadtest-mutant"

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				resp, err := http.Post(mutateURL+"/v1/put?name="+name,
					"application/octet-stream", bytes.NewReader(payload))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					count.Add(1)
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// loadtestStats fetches /v1/stats and flattens every integer-valued
// field into one map, so the caller can read result-cache counters
// without caring whether the target is a node (server block) or a
// coordinator (coordinator block).
func loadtestStats(target string) (map[string]int64, bool) {
	resp, err := http.Get(target + "/v1/stats")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, false
	}
	flat := make(map[string]int64)
	flattenInts(doc, flat)
	return flat, true
}

// flattenInts walks decoded JSON and accumulates every numeric leaf
// under its own key name (summing duplicates, e.g. per-shard blocks).
func flattenInts(v any, into map[string]int64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			if f, ok := child.(float64); ok {
				into[k] += int64(f)
				continue
			}
			flattenInts(child, into)
		}
	case []any:
		for _, child := range t {
			flattenInts(child, into)
		}
	}
}

// loadtestTrain resolves the query's train side: a saved sketch file,
// or a synthetic train shaped like the bench corpus (keys g0..g399,
// default seed and method) so a loadtest joins a store built by
// `misketch bench -dir` without extra setup.
func loadtestTrain(path string) (*misketch.Sketch, error) {
	if path != "" {
		return misketch.LoadSketch(path)
	}
	tb, err := misketch.NewStreamBuilder(misketch.RoleTrain, true, misketch.Options{Size: 256})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4000; i++ {
		g := i % 400
		tb.AddNum(fmt.Sprintf("g%d", g), float64(g%20)+0.1*float64(i%7))
	}
	return tb.Sketch(), nil
}

// loadtestQuery posts one rank query and reports whether the answer
// was degraded (cluster partial mode). A non-200 status is an error:
// the contract under test is that killing a shard degrades answers,
// never fails them.
func loadtestQuery(target string, body []byte) (partial bool, elapsed time.Duration, err error) {
	start := time.Now()
	resp, err := http.Post(target+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, 0, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
	}
	var rr misketch.ClusterRankResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return false, 0, fmt.Errorf("undecodable response: %w", err)
	}
	return rr.Partial, time.Since(start), nil
}
