package main

// misketch loadtest: sustained concurrent rank traffic against a
// running discovery service — a single node or a cluster coordinator
// (the two speak the same protocol, so -url is all that differs). Each
// worker posts the same /v1/rank query in a closed loop until the
// deadline; the report is QPS, latency percentiles, and the
// error/partial counts that matter when shards are being killed under
// the test. The JSON record appends to the same BENCH file the bench
// command writes, so single-node and cluster throughput sit side by
// side.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"misketch"
)

func runLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	target := fs.String("url", "", "base URL of the service under test (node or coordinator)")
	duration := fs.Duration("duration", 10*time.Second, "how long to sustain traffic")
	concurrency := fs.Int("concurrency", 8, "concurrent closed-loop workers")
	top := fs.Int("top", 10, "top-K bound of each query")
	minJoin := fs.Int("min-join", 50, "min join size of each query")
	prefix := fs.String("prefix", "bench/", "candidate name prefix of each query")
	sketchFile := fs.String("sketch", "", "saved train sketch to query with (default: a synthetic bench-shaped train)")
	label := fs.String("label", "", "label recorded in the JSON record's bench name")
	out := fs.String("out", "", "append the JSON record to this file (default: stdout only)")
	die(fs.Parse(args))
	requireFlags(map[string]string{"url": *target})
	if *concurrency < 1 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -concurrency and -duration must be positive")
		os.Exit(2)
	}

	train, err := loadtestTrain(*sketchFile)
	die(err)
	var buf bytes.Buffer
	die(misketch.WriteSketch(&buf, train))
	body, err := json.Marshal(misketch.RankRequest{
		Sketch:  base64.StdEncoding.EncodeToString(buf.Bytes()),
		Prefix:  *prefix,
		MinJoin: minJoin,
		Top:     *top,
	})
	die(err)

	// One probe request before the clock starts: fail fast on a dead
	// target or a bad query, and warm the server's probe cache so the
	// measured window is steady-state.
	if _, _, err := loadtestQuery(*target, body); err != nil {
		die(fmt.Errorf("loadtest: probe query failed: %w", err))
	}

	type workerResult struct {
		latencies []time.Duration
		errors    int
		partial   int
		lastErr   error
	}
	results := make([]workerResult, *concurrency)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			for time.Now().Before(deadline) {
				qStart := time.Now()
				partial, _, err := loadtestQuery(*target, body)
				if err != nil {
					r.errors++
					r.lastErr = err
					continue
				}
				r.latencies = append(r.latencies, time.Since(qStart))
				if partial {
					r.partial++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)

	var latencies []time.Duration
	nErr, nPartial := 0, 0
	var lastErr error
	for _, r := range results {
		latencies = append(latencies, r.latencies...)
		nErr += r.errors
		nPartial += r.partial
		if r.lastErr != nil {
			lastErr = r.lastErr
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	qps := float64(len(latencies)) / elapsed.Seconds()

	name := "LoadtestRank"
	if *label != "" {
		name += "/" + *label
	}
	rec := map[string]any{
		"stage":       "loadtest",
		"bench":       name,
		"url":         *target,
		"concurrency": *concurrency,
		"duration_ns": elapsed.Nanoseconds(),
		"requests":    len(latencies),
		"errors":      nErr,
		"partial":     nPartial,
		"qps":         math2(qps),
		"p50_ns":      pct(0.50).Nanoseconds(),
		"p90_ns":      pct(0.90).Nanoseconds(),
		"p99_ns":      pct(0.99).Nanoseconds(),
		"top":         *top,
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"date":        time.Now().UTC().Format("2006-01-02"),
	}
	line, err := json.Marshal(rec)
	die(err)
	fmt.Println(string(line))
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		die(err)
		_, werr := f.Write(append(line, '\n'))
		die(errors.Join(werr, f.Close()))
	}
	if nErr > 0 {
		die(fmt.Errorf("loadtest: %d of %d requests failed (last: %v)", nErr, nErr+len(latencies), lastErr))
	}
}

// math2 rounds to two decimals so QPS records stay readable.
func math2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// loadtestTrain resolves the query's train side: a saved sketch file,
// or a synthetic train shaped like the bench corpus (keys g0..g399,
// default seed and method) so a loadtest joins a store built by
// `misketch bench -dir` without extra setup.
func loadtestTrain(path string) (*misketch.Sketch, error) {
	if path != "" {
		return misketch.LoadSketch(path)
	}
	tb, err := misketch.NewStreamBuilder(misketch.RoleTrain, true, misketch.Options{Size: 256})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4000; i++ {
		g := i % 400
		tb.AddNum(fmt.Sprintf("g%d", g), float64(g%20)+0.1*float64(i%7))
	}
	return tb.Sketch(), nil
}

// loadtestQuery posts one rank query and reports whether the answer
// was degraded (cluster partial mode). A non-200 status is an error:
// the contract under test is that killing a shard degrades answers,
// never fails them.
func loadtestQuery(target string, body []byte) (partial bool, elapsed time.Duration, err error) {
	start := time.Now()
	resp, err := http.Post(target+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, 0, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
	}
	var rr misketch.ClusterRankResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return false, 0, fmt.Errorf("undecodable response: %w", err)
	}
	return rr.Partial, time.Since(start), nil
}
