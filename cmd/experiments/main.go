// Command experiments regenerates the paper's evaluation artifacts
// (Section V): the full-join estimator baseline, Figures 2–5, Tables I
// and II, and the performance numbers from Section V-D.
//
// Usage:
//
//	experiments [-run all|fulljoin|fig2|fig3|fig4|fig5|table1|table2|perf|ablation|convergence|smoothing|cascade]
//	            [-trials N] [-rows N] [-sketch N] [-pairs N] [-seed N]
//
// Output is written to stdout as fixed-width tables; the series the
// paper plots appear as binned true-MI vs mean-estimate columns. Expect
// the full run to take a few minutes at the default scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"misketch/internal/exp"
)

func main() {
	var (
		run    = flag.String("run", "all", "which experiment to run: all, fulljoin, fig2, fig3, fig4, fig5, table1, table2, perf, ablation, convergence, smoothing, cascade")
		trials = flag.Int("trials", 40, "datasets per configuration cell (synthetic experiments)")
		rows   = flag.Int("rows", 10000, "rows per synthetic dataset (the paper uses 10k)")
		sketch = flag.Int("sketch", 256, "sketch size n for synthetic experiments (the paper uses 256)")
		pairs  = flag.Int("pairs", 60, "table pairs per collection (corpus experiments)")
		seed   = flag.Int64("seed", 1, "random seed; equal seeds reproduce runs exactly")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Trials: *trials, Rows: *rows, SketchSize: *sketch}
	w := os.Stdout

	want := func(name string) bool { return *run == "all" || strings.EqualFold(*run, name) }
	ran := false

	if want("fulljoin") {
		ran = true
		rs, err := exp.RunFullJoin(cfg)
		die(err)
		exp.WriteFullJoin(w, rs)
	}
	if want("fig2") {
		ran = true
		r, err := exp.RunFig2(cfg)
		die(err)
		r.Write(w)
	}
	if want("fig3") {
		ran = true
		r, err := exp.RunFig3(cfg)
		die(err)
		r.Write(w)
	}
	if want("fig4") {
		ran = true
		r, err := exp.RunFig4(cfg)
		die(err)
		r.Write(w)
	}
	if want("table1") {
		ran = true
		rs, err := exp.RunTable1(cfg)
		die(err)
		exp.WriteTable1(w, rs)
	}
	if want("table2") || want("fig5") {
		ran = true
		// The paper's real-data experiments use n = 1024.
		corpusCfg := cfg
		corpusCfg.SketchSize = 1024
		res, err := exp.RunTable2(corpusCfg, *pairs)
		die(err)
		if want("table2") {
			res.Write(w)
		}
		if want("fig5") {
			exp.WriteFig5(w, exp.RunFig5(res.Records["WBF"]))
		}
	}
	if want("perf") {
		ran = true
		rs, err := exp.RunPerf(cfg)
		die(err)
		exp.WritePerf(w, rs)
	}
	if want("ablation") {
		ran = true
		rs, err := exp.RunCandSizeAblation(cfg)
		die(err)
		exp.WriteAblation(w, rs)
	}
	if want("convergence") {
		ran = true
		r, err := exp.RunConvergence(cfg)
		die(err)
		r.Write(w)
	}
	if want("smoothing") {
		ran = true
		r, err := exp.RunSmoothing(cfg, 1)
		die(err)
		r.Write(w)
	}
	if want("cascade") {
		ran = true
		r, err := exp.RunCascadeCalib(cfg, *pairs)
		die(err)
		r.Write(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
