package misketch

// e2e_cluster_test.go drives cluster mode the way a deployment would:
// three fs-backed shard stores, each behind a real misketch serve
// listener on port 0, fronted by a coordinator on its own listener. A
// rank over the coordinator must be bit-identical to a single node
// ranking the union catalog, and killing a shard mid-run must degrade
// the answer (partial: true), never fail it. Named TestCluster* so the
// CI cluster smoke step can select the whole family with -run.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// serveOnPort0 starts srv on a port-0 listener and returns its base
// URL plus a cancel that drains it.
func serveOnPort0(t *testing.T, serve func(context.Context, net.Listener) error) (string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("serve did not drain within 10s")
		}
	})
	return "http://" + ln.Addr().String(), cancel
}

func TestClusterE2EMatchesSingleNode(t *testing.T) {
	const nShards, nCand = 3, 24

	// Build the union store and the three disjoint shard stores on
	// disk, dealing candidate c to shard c%nShards.
	union, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shardSts := make([]*Store, nShards)
	for i := range shardSts {
		if shardSts[i], err = OpenStore(t.TempDir()); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	opt := Options{Size: 128}
	tb, err := NewStreamBuilder(RoleTrain, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		g := rng.Intn(120)
		tb.AddNum(fmt.Sprintf("g%d", g), float64(g%8)+0.5*rng.NormFloat64())
	}
	train := tb.Sketch()
	for c := 0; c < nCand; c++ {
		cb, err := NewStreamBuilder(RoleCandidate, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 120; g++ {
			cb.AddNum(fmt.Sprintf("g%d", g), float64(g%8)+float64(1+c%6)*rng.NormFloat64())
		}
		sk := cb.Sketch()
		name := fmt.Sprintf("corpus/c%03d", c)
		if err := union.Put(name, sk); err != nil {
			t.Fatal(err)
		}
		if err := shardSts[c%nShards].Put(name, sk); err != nil {
			t.Fatal(err)
		}
	}

	// Single-node ground truth over the union store.
	unionSrv := httptest.NewServer(NewServer(union, ServerOptions{}))
	defer unionSrv.Close()

	// Real listeners for the shards and the coordinator.
	shardURLs := make([]string, nShards)
	cancels := make([]context.CancelFunc, nShards)
	for i, st := range shardSts {
		srv := NewServer(st, ServerOptions{})
		shardURLs[i], cancels[i] = serveOnPort0(t, srv.ServeListener)
	}
	coord, err := OpenCluster(shardURLs, ClusterOptions{
		Retries:      -1,
		RetryBackoff: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordURL, _ := serveOnPort0(t, coord.ServeListener)

	minJoin := 10
	body, err := json.Marshal(RankRequest{
		Sketch:  sketchB64(t, train),
		Prefix:  "corpus/",
		MinJoin: &minJoin,
		K:       3,
		Top:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rank := func(base string) (int, ClusterRankResponse) {
		t.Helper()
		resp, err := http.Post(base+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var rr ClusterRankResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &rr); err != nil {
				t.Fatalf("decoding %q: %v", raw, err)
			}
		}
		return resp.StatusCode, rr
	}

	status, want := rank(unionSrv.URL)
	if status != http.StatusOK || len(want.Ranked) == 0 {
		t.Fatalf("single-node rank: status %d, %d results", status, len(want.Ranked))
	}
	status, got := rank(coordURL)
	if status != http.StatusOK {
		t.Fatalf("cluster rank: status %d", status)
	}
	if got.Partial {
		t.Fatalf("cluster rank partial with all shards up: %+v", got.ShardErrors)
	}
	if len(got.Ranked) != len(want.Ranked) {
		t.Fatalf("cluster ranked %d, single node %d", len(got.Ranked), len(want.Ranked))
	}
	for i := range got.Ranked {
		if got.Ranked[i] != want.Ranked[i] {
			t.Fatalf("rank[%d]: cluster %+v != single-node %+v", i, got.Ranked[i], want.Ranked[i])
		}
	}

	// Kill shard 1 for real (drain its listener) and re-rank: the
	// answer must degrade, not fail.
	cancels[1]()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, got = rank(coordURL)
		if status != http.StatusOK {
			t.Fatalf("rank with a dead shard: status %d, want 200 degraded", status)
		}
		if got.Partial {
			break
		}
		// The drain may still be finishing; a fully-answered query in
		// the window is fine — it must still be bit-identical.
		if time.Now().After(deadline) {
			t.Fatal("shard kill never surfaced as a partial response")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(got.ShardErrors) != 1 || got.ShardErrors[0].Shard != shardURLs[1] {
		t.Fatalf("shard errors = %+v, want one for %s", got.ShardErrors, shardURLs[1])
	}
	if len(got.Ranked) == 0 {
		t.Fatal("degraded rank returned no results from surviving shards")
	}
}

func sketchB64(t testing.TB, sk *Sketch) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}
