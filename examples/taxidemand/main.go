// Taxi demand: the paper's running example (Figure 1). A data scientist
// predicting daily taxi trips per ZIP code asks which external tables are
// worth joining: hourly weather (joinable on date, needs aggregation),
// demographics (joinable on ZIP code), and an irrelevant permits table
// that is joinable but uninformative. MI sketches answer without
// materializing any join.
//
// Run with: go run ./examples/taxidemand
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"misketch"
)

const days = 365 * 2

func date(d int) string { return fmt.Sprintf("2017-%03d", d) }

func main() {
	rng := rand.New(rand.NewSource(7))

	// Hidden ground truth: daily temperature and rainfall drive demand;
	// each ZIP's population sets its base level.
	temp := make([]float64, days)
	rain := make([]float64, days)
	for d := range temp {
		seasonal := 15 - 12*math.Cos(2*math.Pi*float64(d)/365)
		temp[d] = seasonal + 3*rng.NormFloat64()
		if rng.Float64() < 0.3 {
			rain[d] = rng.ExpFloat64() * 5
		}
	}
	zips := []string{"11201", "10011", "10458", "11368", "10314"}
	pop := map[string]float64{"11201": 53041, "10011": 50594, "10458": 79492, "11368": 109931, "10314": 88760}

	// T_taxi: one row per (date, zip) with the trip count target.
	var dates, zipCol []string
	var trips []float64
	for d := 0; d < days; d++ {
		for _, z := range zips {
			demand := pop[z]/800 + 2*temp[d] - 6*rain[d] + 2*rng.NormFloat64()
			dates = append(dates, date(d))
			zipCol = append(zipCol, z)
			trips = append(trips, math.Max(0, demand))
		}
	}
	taxi := misketch.NewTable(
		misketch.NewStringColumn("date", dates),
		misketch.NewStringColumn("zip", zipCol),
		misketch.NewFloatColumn("num_trips", trips),
	)

	// T_weather: hourly readings — 24 rows per date (repeated join keys;
	// the sketch aggregates them with AVG, as in Figure 1(d)).
	var wDates []string
	var wTemp, wRain []float64
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			wDates = append(wDates, date(d))
			wTemp = append(wTemp, temp[d]+2*rng.NormFloat64())
			wRain = append(wRain, rain[d]/24+0.05*rng.Float64())
		}
	}
	weather := misketch.NewTable(
		misketch.NewStringColumn("date", wDates),
		misketch.NewFloatColumn("temp", wTemp),
		misketch.NewFloatColumn("rainfall", wRain),
	)

	// T_demographics: one row per ZIP.
	var dZips, boroughs []string
	var dPop []float64
	borough := map[string]string{"11201": "Brooklyn", "10011": "Manhattan", "10458": "Bronx", "11368": "Queens", "10314": "Staten Island"}
	for _, z := range zips {
		dZips = append(dZips, z)
		boroughs = append(boroughs, borough[z])
		dPop = append(dPop, pop[z])
	}
	demo := misketch.NewTable(
		misketch.NewStringColumn("zip", dZips),
		misketch.NewStringColumn("borough", boroughs),
		misketch.NewFloatColumn("population", dPop),
	)

	// T_permits: joinable on date but pure noise.
	var pDates []string
	var permits []float64
	for d := 0; d < days; d++ {
		pDates = append(pDates, date(d))
		permits = append(permits, 20+12*rng.NormFloat64())
	}
	permitsT := misketch.NewTable(
		misketch.NewStringColumn("date", pDates),
		misketch.NewFloatColumn("permits_issued", permits),
	)

	// Discovery: sketch the base table per join key, sketch every
	// candidate column, rank by estimated MI.
	opts := misketch.Options{Size: 1024}
	stByDate, err := misketch.SketchTrain(taxi, "date", "num_trips", opts)
	if err != nil {
		log.Fatal(err)
	}
	stByZip, err := misketch.SketchTrain(taxi, "zip", "num_trips", opts)
	if err != nil {
		log.Fatal(err)
	}

	type cand struct {
		name    string
		train   *misketch.Sketch
		tbl     *misketch.Table
		key     string
		feature string
		agg     misketch.AggFunc
	}
	cands := []cand{
		{"weather.temp (AVG, on date)", stByDate, weather, "date", "temp", misketch.AggAvg},
		{"weather.rainfall (AVG, on date)", stByDate, weather, "date", "rainfall", misketch.AggAvg},
		{"permits.permits_issued (on date)", stByDate, permitsT, "date", "permits_issued", misketch.AggFirst},
		{"demographics.population (on zip)", stByZip, demo, "zip", "population", misketch.AggFirst},
		{"demographics.borough (on zip)", stByZip, demo, "zip", "borough", misketch.AggMode},
	}
	fmt.Printf("%-36s %10s %10s %10s\n", "candidate feature", "MI (nats)", "estimator", "join size")
	for _, c := range cands {
		sc, err := misketch.SketchCandidate(c.tbl, c.key, c.feature, misketch.Options{
			Size: opts.Size, Agg: c.agg,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := misketch.EstimateMI(c.train, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %10.3f %10s %10d\n", c.name, res.MI, res.Estimator, res.N)
	}
	fmt.Println("\nweather and demographics rank high; the joinable-but-irrelevant permits")
	fmt.Println("table ranks near zero — exactly the pruning the paper's sketches enable.")
}
