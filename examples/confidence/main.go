// Confidence intervals: how sure is a sketch estimate? The paper's
// Section IV-B points at subsampling error bounds whose width shrinks at
// a near square-root rate in the sketch join size. This example estimates
// the same relationship with growing sketch sizes and prints the
// estimate, its 95% interval, and the exact full-join value — watch the
// interval tighten around it.
//
// Run with: go run ./examples/confidence
package main

import (
	"fmt"
	"log"
	"math/rand"

	"misketch"
)

func main() {
	// A base table whose target depends on a hidden group structure, and
	// a candidate table exposing that structure.
	rng := rand.New(rand.NewSource(11))
	const groups = 3000
	var keys []string
	var ys []float64
	for i := 0; i < 60000; i++ {
		g := rng.Intn(groups)
		keys = append(keys, fmt.Sprintf("g%d", g))
		ys = append(ys, float64(g%4)+0.6*rng.NormFloat64())
	}
	base := misketch.NewTable(
		misketch.NewStringColumn("k", keys),
		misketch.NewFloatColumn("y", ys),
	)
	var candKeys []string
	var xs []float64
	for g := 0; g < groups; g++ {
		candKeys = append(candKeys, fmt.Sprintf("g%d", g))
		xs = append(xs, float64(g%4))
	}
	cand := misketch.NewTable(
		misketch.NewStringColumn("k", candKeys),
		misketch.NewFloatColumn("x", xs),
	)

	full, err := misketch.FullJoinMI(base, "k", "y", cand, "k", "x", misketch.AggFirst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-join reference: I = %.3f nats (on %d rows)\n\n", full.MI, full.N)

	fmt.Printf("%8s %10s %22s %8s\n", "sketch n", "estimate", "95% interval", "width")
	for _, n := range []int{128, 256, 512, 1024, 2048, 4096} {
		opt := misketch.Options{Size: n}
		st, err := misketch.SketchTrain(base, "k", "y", opt)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := misketch.SketchCandidate(cand, "k", "x", opt)
		if err != nil {
			log.Fatal(err)
		}
		res, ci, err := misketch.EstimateMIWithCI(st, sc, 80, 0.95, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10.3f [%9.3f, %8.3f] %8.3f\n",
			n, res.MI, ci.Lo, ci.Hi, ci.Hi-ci.Lo)
	}
	fmt.Println("\nwidths shrink roughly like 1/sqrt(n) — the rate of the error bounds")
	fmt.Println("the paper cites. Use the interval to decide when a sketch join is big")
	fmt.Println("enough to trust a ranking decision.")
}
