// Discovery at repository scale: rank every table of a simulated
// open-data repository by the estimated MI between its value column and a
// query table's target — the paper's data-discovery workload (Section
// V-C), run against the on-disk sketch store. All candidate sketches are
// built once ("offline") into a sharded, manifest-indexed store;
// answering the query reads the manifest plus only the sketches that
// survive its filters, bounded to the top K by a ranking heap.
//
// Run with: go run ./examples/discovery
//
// With -client local, the query phase instead goes through the HTTP
// discovery service (`misketch serve`): an in-process server is started
// over the same store and the ranking is requested twice over
// /v1/rank, demonstrating the probe cache turning the second query into
// a warm hit. Pass -client host:port to hit an already-running server
// instead.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"misketch"
	"misketch/internal/corpus"
)

func main() {
	client := flag.String("client", "", `rank through a discovery server: "local" starts one in-process, host:port hits a running one (default: direct store API)`)
	flag.Parse()
	// Generate a small open-data repository (the WBF stand-in).
	cfg := corpus.WBFConfig()
	cfg.NumTables = 40
	repo := corpus.Generate(cfg, 2024)

	// The user's query table: pick one whose value column actually
	// depends on its keys, so there is something to discover.
	query := repo.Tables[0]
	for _, t := range repo.Tables {
		if t.Dependence > query.Dependence {
			query = t
		}
	}

	dir, err := os.MkdirTemp("", "misketch-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Offline phase: sketch every other table's (key, value) pair once
	// into the store, then persist the manifest.
	opts := misketch.Options{Size: 1024}
	st, err := misketch.OpenStoreWithOptions(dir, misketch.OpenStoreOptions{
		CacheBytes: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	indexed := 0
	for _, t := range repo.Tables {
		if t.ID == query.ID {
			continue
		}
		s, err := misketch.SketchCandidate(t.T, corpus.KeyCol, corpus.ValCol, opts)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("wbf/table-%03d#%s@%s", t.ID, corpus.ValCol, corpus.KeyCol)
		if err := st.Put(name, s); err != nil {
			log.Fatal(err)
		}
		indexed++
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d tables into a sharded store in %v\n\n",
		indexed, time.Since(start).Round(time.Millisecond))

	// Query phase, against a cold handle: nothing cached, every
	// candidate admitted by the manifest is read exactly once.
	cold, err := misketch.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	trainSk, err := misketch.SketchTrain(query.T, corpus.KeyCol, corpus.ValCol, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *client != "" {
		runClient(*client, cold, query, trainSk)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start = time.Now()
	const topK = 10
	ranked, skipped, err := cold.RankContext(ctx, trainSk, "wbf/", 100, misketch.DefaultK, topK)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("query: table-%03d (domain %d, key-dependence %.2f)\n",
		query.ID, query.Domain, query.Dependence)
	fmt.Printf("%-36s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
	for _, r := range ranked {
		fmt.Printf("%-36s %10.3f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
	}
	stats := cold.Stats()
	fmt.Printf("\ntop %d of %d stored sketches in %v — %d sketch reads, %d skipped by manifest filters\n",
		len(ranked), stats.Sketches, elapsed.Round(time.Microsecond), stats.DiskReads, len(skipped))
	fmt.Println("(no join was materialized, and no excluded sketch was deserialized)")

	// Batch sweep: an analyst rarely stops at one target. Treat the four
	// most key-dependent tables as a sweep of query targets and rank them
	// all in ONE corpus pass — candidates load once, and the key-overlap
	// prefilter skips every (target, candidate) pair whose coordinated
	// key intersection proves the join too small to rank.
	var sweep []*misketch.Sketch
	var labels []string
	for _, t := range repo.Tables {
		if t.Dependence >= 0.5 && len(sweep) < 4 {
			sk, err := misketch.SketchTrain(t.T, corpus.KeyCol, corpus.ValCol, opts)
			if err != nil {
				log.Fatal(err)
			}
			sweep = append(sweep, sk)
			labels = append(labels, fmt.Sprintf("table-%03d", t.ID))
		}
	}
	if len(sweep) == 0 {
		return
	}
	start = time.Now()
	batch, err := misketch.RankBatch(ctx, cold, sweep, misketch.BatchRankOptions{
		Prefix: "wbf/", MinJoinSize: 100, K: misketch.DefaultK, TopK: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch sweep: %d targets in one corpus pass (%v)\n",
		len(sweep), time.Since(start).Round(time.Microsecond))
	for q, label := range labels {
		best := "-"
		if rs := batch.Queries[q].Ranked; len(rs) > 0 {
			best = fmt.Sprintf("%s (MI %.3f)", rs[0].Name, rs[0].MI)
		}
		fmt.Printf("  %s: best %s, %d pairs pruned before estimation\n",
			label, best, batch.Queries[q].Pruned)
	}
	fmt.Printf("(prefilter skipped %d of %d (target, candidate) estimator runs)\n",
		cold.Stats().PrunedPairs, len(sweep)*stats.Sketches)
}

// runClient answers the discovery query over the HTTP service instead of
// the direct store API. addr "local" boots an in-process server over the
// example's store; anything else is treated as the address of a running
// `misketch serve`.
func runClient(addr string, st *misketch.Store, query *corpus.Table, trainSk *misketch.Sketch) {
	base := "http://" + addr
	if addr == "local" {
		srv := misketch.NewServer(st, misketch.ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			if err := srv.ServeListener(ctx, ln); err != nil {
				log.Fatal(err)
			}
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process discovery server on %s\n\n", ln.Addr())
	}

	var buf bytes.Buffer
	if err := misketch.WriteSketch(&buf, trainSk); err != nil {
		log.Fatal(err)
	}
	minJoin := 100
	body, err := json.Marshal(misketch.RankRequest{
		Sketch:  base64.StdEncoding.EncodeToString(buf.Bytes()),
		Prefix:  "wbf/",
		MinJoin: &minJoin,
		Top:     10,
	})
	if err != nil {
		log.Fatal(err)
	}

	rank := func() misketch.RankResponse {
		resp, err := http.Post(base+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("rank: status %d: %s", resp.StatusCode, raw)
		}
		var rr misketch.RankResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			log.Fatal(err)
		}
		return rr
	}
	first := rank()
	second := rank() // identical query: the compiled probe is cached

	fmt.Printf("query: table-%03d (domain %d, key-dependence %.2f), via %s\n",
		query.ID, query.Domain, query.Dependence, base)
	fmt.Printf("%-36s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
	for _, r := range second.Ranked {
		fmt.Printf("%-36s %10.3f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
	}
	fmt.Printf("\ncold query:  %v (probe compiled)\n", time.Duration(first.ElapsedNS))
	fmt.Printf("warm query:  %v (probe cache hit: %v)\n", time.Duration(second.ElapsedNS), second.ProbeCached)
	fmt.Println("(same bits as the direct API; the service adds caching and admission control, not variance)")
}
