// Discovery at repository scale: rank every table of a simulated
// open-data repository by the estimated MI between its value column and a
// query table's target — the paper's data-discovery workload (Section
// V-C). All candidate sketches are built once ("offline"); answering the
// query touches only sketches.
//
// Run with: go run ./examples/discovery
package main

import (
	"fmt"
	"log"
	"time"

	"misketch"
	"misketch/internal/corpus"
)

func main() {
	// Generate a small open-data repository (the WBF stand-in).
	cfg := corpus.WBFConfig()
	cfg.NumTables = 40
	repo := corpus.Generate(cfg, 2024)

	// Offline phase: sketch every table's (key, value) pair once.
	opts := misketch.Options{Size: 1024}
	start := time.Now()
	type entry struct {
		name   string
		sketch *misketch.Sketch
		domain int
	}
	var index []entry
	for _, t := range repo.Tables {
		s, err := misketch.SketchCandidate(t.T, corpus.KeyCol, corpus.ValCol, opts)
		if err != nil {
			log.Fatal(err)
		}
		index = append(index, entry{
			name:   fmt.Sprintf("table-%03d (domain %d)", t.ID, t.Domain),
			sketch: s,
			domain: t.Domain,
		})
	}
	fmt.Printf("indexed %d tables in %v (sketches only: %d entries each)\n\n",
		len(index), time.Since(start).Round(time.Millisecond), opts.Size)

	// Query phase: the user brings a base table (one of the repository's
	// domains) and asks which tables carry information about its target.
	// Pick a query whose value column actually depends on its keys, so
	// there is something to discover.
	query := repo.Tables[0]
	for _, t := range repo.Tables {
		if t.Dependence > query.Dependence {
			query = t
		}
	}
	st, err := misketch.SketchTrain(query.T, corpus.KeyCol, corpus.ValCol, opts)
	if err != nil {
		log.Fatal(err)
	}
	var cands []misketch.Candidate
	for _, e := range index {
		if e.name == fmt.Sprintf("table-%03d (domain %d)", query.ID, query.Domain) {
			continue // skip the query table itself
		}
		cands = append(cands, misketch.Candidate{Name: e.name, Sketch: e.sketch})
	}
	start = time.Now()
	ranked, err := misketch.Rank(st, cands, 100)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("query: table-%03d (domain %d, key-dependence %.2f)\n",
		query.ID, query.Domain, query.Dependence)
	fmt.Printf("%-28s %10s %10s %10s\n", "candidate", "MI (nats)", "estimator", "join size")
	shown := 0
	for _, r := range ranked {
		if shown >= 10 {
			break
		}
		fmt.Printf("%-28s %10.3f %10s %10d\n", r.Name, r.MI, r.Estimator, r.JoinSize)
		shown++
	}
	fmt.Printf("\nranked %d joinable candidates in %v without materializing a single join\n",
		len(ranked), elapsed.Round(time.Microsecond))
	fmt.Printf("(%d candidates were filtered out: non-overlapping keys or sketch join ≤ 100)\n",
		len(cands)-len(ranked))
}
