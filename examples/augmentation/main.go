// Augmentation featurization: how the choice of aggregation function AGG
// changes what a joined feature can tell you (Section III-B, Example 2).
// A candidate table holds hourly events per store; the base table's
// target depends on the *count* of daily events, not their values. Only
// COUNT featurization surfaces the dependence — AVG looks uninformative.
//
// Run with: go run ./examples/augmentation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"misketch"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const stores = 1200

	// Hidden truth: each store has a daily event rate; the target is
	// driven by that rate (i.e., by how often events occur).
	rate := make([]int, stores)
	for s := range rate {
		rate[s] = 1 + rng.Intn(12)
	}

	// Base table: one row per store with the target metric.
	var keys []string
	var target []float64
	for s := 0; s < stores; s++ {
		keys = append(keys, fmt.Sprintf("store-%04d", s))
		target = append(target, float64(rate[s])*2+rng.NormFloat64())
	}
	base := misketch.NewTable(
		misketch.NewStringColumn("store", keys),
		misketch.NewFloatColumn("weekly_sales", target),
	)

	// Candidate table: event log with repeated keys — rate[s] rows per
	// store — whose recorded values are pure noise.
	var eKeys []string
	var eVals []float64
	for s := 0; s < stores; s++ {
		for r := 0; r < rate[s]; r++ {
			eKeys = append(eKeys, fmt.Sprintf("store-%04d", s))
			eVals = append(eVals, rng.NormFloat64()) // uninformative values
		}
	}
	events := misketch.NewTable(
		misketch.NewStringColumn("store", eKeys),
		misketch.NewFloatColumn("event_value", eVals),
	)

	st, err := misketch.SketchTrain(base, "store", "weekly_sales", misketch.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("candidate feature: events.event_value, joined on store")
	fmt.Printf("%-8s %12s %12s\n", "AGG", "sketch MI", "full-join MI")
	for _, agg := range []misketch.AggFunc{misketch.AggAvg, misketch.AggFirst, misketch.AggCount} {
		sc, err := misketch.SketchCandidate(events, "store", "event_value", misketch.Options{Agg: agg})
		if err != nil {
			log.Fatal(err)
		}
		res, err := misketch.EstimateMI(st, sc)
		if err != nil {
			log.Fatal(err)
		}
		full, err := misketch.FullJoinMI(base, "store", "weekly_sales",
			events, "store", "event_value", agg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %12.3f\n", agg, res.MI, full.MI)
	}
	fmt.Println("\nCOUNT exposes the dependence hiding in the key-frequency distribution;")
	fmt.Println("AVG and FIRST see only the noise values. In practice, generate multiple")
	fmt.Println("augmentation columns with different AGGs and rank them all (Section III-B).")
}
