// Quickstart: estimate mutual information between columns of two tables
// across a join, without materializing the join.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"misketch"
)

func main() {
	// A base table: 50,000 measurements keyed by sensor id, with the
	// target we care about ("reading").
	rng := rand.New(rand.NewSource(1))
	const sensors = 2000
	siteOf := make([]int, sensors) // hidden: each sensor belongs to a site
	for s := range siteOf {
		siteOf[s] = rng.Intn(12)
	}
	var keys []string
	var readings []float64
	for i := 0; i < 50000; i++ {
		s := rng.Intn(sensors)
		// Readings depend strongly on the sensor's site plus noise.
		keys = append(keys, fmt.Sprintf("sensor-%04d", s))
		readings = append(readings, 3*float64(siteOf[s])+rng.NormFloat64())
	}
	base := misketch.NewTable(
		misketch.NewStringColumn("sensor", keys),
		misketch.NewFloatColumn("reading", readings),
	)

	// An external table: sensor metadata, including the site label.
	var candKeys, sites []string
	for s := 0; s < sensors; s++ {
		candKeys = append(candKeys, fmt.Sprintf("sensor-%04d", s))
		sites = append(sites, fmt.Sprintf("site-%02d", siteOf[s]))
	}
	meta := misketch.NewTable(
		misketch.NewStringColumn("sensor", candKeys),
		misketch.NewStringColumn("site", sites),
	)

	// Sketch both tables once (normally offline)...
	st, err := misketch.SketchTrain(base, "sensor", "reading", misketch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sc, err := misketch.SketchCandidate(meta, "sensor", "site", misketch.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// ...then estimate MI from the sketches alone.
	res, err := misketch.EstimateMI(st, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sketch estimate: I(reading; site) ≈ %.3f nats (%s on %d join samples)\n",
		res.MI, res.Estimator, res.N)

	// Compare against the exact full-join computation.
	full, err := misketch.FullJoinMI(base, "sensor", "reading", meta, "sensor", "site", misketch.AggFirst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full join:       I(reading; site) ≈ %.3f nats (%s on %d rows)\n",
		full.MI, full.Estimator, full.N)
	fmt.Println("joining this metadata table would add a highly informative feature.")
}
